"""Sharded HatKV: consistent-hash routing over N HatKV servers.

The cluster side (:class:`ShardedKVCluster`) launches one
:class:`~repro.hatkv.server.HatKVServer` per shard on its own simulated
node, each with its own LMDB backend.  The client side
(:class:`ShardRouter`) opens one HatRPC channel set per shard -- each with
its own hint-resolved ServicePlan, pipeline window, breakers, and retry
state -- and maps keys onto shards with a consistent-hash ring
(:class:`HashRing`, virtual nodes for balance).

Replication is successor-based: a key's primary shard is its ring owner,
and its replicas are the next ``replicas - 1`` shards in shard order.
Every key on primary ``s`` therefore has the same replica set, which lets
the router fail a *whole channel's* swept reads over to one replica engine
without decoding per-call keys.  Reads fail over to replicas; writes fan
to every replica and surface typed transport errors instead of blindly
retrying (a re-sent write could double-apply).

The ring is elastic: :meth:`ShardedKVCluster.resize` grows or shrinks the
shard count *live*, streaming only the remapped vnode arcs to their new
owners while traffic keeps flowing (see :mod:`repro.hatkv.migration` for
the range states, the cutover fence, and the dual-read forwarding
window).  While a resize runs, the active
:class:`~repro.hatkv.migration.MigrationPlan` -- not either ring alone --
is the routing truth: routers resolve preference, write gates, and
post-cutover read fallbacks against it, and each range flip bumps the
cluster's ``routing_epoch`` so caches and scans can tell which side of a
cutover an answer came from.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence, Tuple

from repro.thrift.errors import TTransportException

from repro import obs
from repro.hatkv.cache import (HIT_COST, HotKeyCache, cache_hit_result,
                               trace_cache_hit)
from repro.hatkv.client import (IDEMPOTENT_FUNCTIONS, cache_for,
                                connect_hatkv)
from repro.hatkv.client import multi_delete as _pipelined_multi_delete
from repro.hatkv.client import multi_put as _pipelined_multi_put
from repro.hatkv.idl import load_hatkv_module
from repro.hatkv.migration import (FORWARD_WINDOW, HandoffGuard,
                                   MigrationPlan, RangeState, VnodeRange,
                                   coalesce_ranges, hash_key, ring_segments)
from repro.hatkv.server import BASE_SID, SERVICE, HatKVServer
from repro.sim.core import Event

__all__ = ["HashRing", "RoutingView", "ShardRouter", "ShardedKVCluster"]

#: ring placement hash (md5-derived; see :func:`repro.hatkv.migration.hash_key`)
_hash64 = hash_key


class HashRing:
    """Consistent-hash ring: ``vnodes`` points per shard for balance.

    ``shard_of(key)`` is the first point clockwise from the key's hash.
    Adding or removing one shard only remaps the keys on that shard's
    arcs, which is the property that makes resharding incremental.
    """

    def __init__(self, n_shards: int, vnodes: int = 256, seed: int = 0):
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.n_shards = n_shards
        self.vnodes = vnodes
        self.seed = seed
        points: List[Tuple[int, int]] = []
        for shard in range(n_shards):
            for v in range(vnodes):
                points.append((_hash64(f"{seed}:{shard}:{v}".encode()),
                               shard))
        points.sort()
        self._hashes = [h for h, _ in points]
        self._shards = [s for _, s in points]

    def owner_of_hash(self, h: int) -> int:
        """The shard owning ring position ``h`` (first point clockwise)."""
        idx = bisect.bisect_right(self._hashes, h)
        if idx == len(self._hashes):
            idx = 0  # wrap past the highest point
        return self._shards[idx]

    def shard_of(self, key: bytes) -> int:
        return self.owner_of_hash(_hash64(key))

    def resize(self, n_shards: int) -> "HashRing":
        """The ring this one becomes at ``n_shards`` shards.

        Same seed and vnode count, so every surviving shard keeps its
        exact points and only the arcs claimed by added (or released by
        removed) vnodes remap -- ``|Δvnodes| / |vnodes|`` of the key
        space, the minimal-movement property consistent hashing exists
        for.  :meth:`moved_ranges` names those arcs.
        """
        return HashRing(n_shards, vnodes=self.vnodes, seed=self.seed)

    def moved_ranges(self, new_ring: "HashRing") -> List[VnodeRange]:
        """The minimal remapped arc set between this ring and
        ``new_ring`` (coalesced; primary ownership only -- replica-set
        deltas are :class:`~repro.hatkv.migration.MigrationPlan`'s
        concern)."""
        return coalesce_ranges(
            [VnodeRange(lo, hi, a, b)
             for lo, hi, a, b in ring_segments(self, new_ring) if a != b])

    def distribution(self, keys) -> List[int]:
        """Keys-per-shard histogram (the router's balance gauge feed)."""
        counts = [0] * self.n_shards
        for key in keys:
            counts[self.shard_of(key)] += 1
        return counts


class RoutingView:
    """A frozen snapshot of the cluster's routing truth.

    ``Scan``'s primary-preference dedup must rank every merged row
    against ONE consistent topology: resolving primaries live would let a
    range flip *between two rows of the same merge* hand the preference
    to a stale replica copy.  The view pins the routing epoch at snapshot
    time -- a migrated range counts as flipped only if its cutover
    happened at or before that epoch -- so the whole merge sees the ring
    as of one instant.
    """

    def __init__(self, cluster: "ShardedKVCluster"):
        self.epoch = cluster.routing_epoch
        self._plan = cluster.migration
        self._ring = cluster.ring

    def primary(self, key: bytes) -> int:
        h = _hash64(key)
        if self._plan is not None:
            return self._plan.primary_at(h, self.epoch)
        return self._ring.owner_of_hash(h)


class ShardedKVCluster:
    """N HatKV servers on distinct sim nodes behind one consistent ring."""

    def __init__(self, testbed, n_shards: int,
                 gen_module=None, variant: str = "function",
                 replicas: int = 1, vnodes: int = 256,
                 server_nodes: Optional[Sequence] = None,
                 concurrency: Optional[int] = None,
                 pipeline: bool = True,
                 ring_seed: int = 0,
                 reserve_nodes: Optional[Sequence] = None,
                 forward_window: Optional[float] = None,
                 **server_kw):
        if not 1 <= replicas <= n_shards:
            raise ValueError("need 1 <= replicas <= n_shards")
        self.testbed = testbed
        self.n_shards = n_shards
        self.replicas = replicas
        self.pipeline = pipeline
        self.concurrency = concurrency
        self.gen = gen_module or load_hatkv_module(variant)
        self.ring = HashRing(n_shards, vnodes=vnodes, seed=ring_seed)
        self.forward_window = FORWARD_WINDOW if forward_window is None \
            else forward_window
        nodes = (list(server_nodes) if server_nodes is not None
                 else testbed.nodes[:n_shards])
        if len(nodes) != n_shards:
            raise ValueError(f"need {n_shards} server nodes, got {len(nodes)}")
        self._server_kw = dict(server_kw)
        self.servers = [HatKVServer(node, self.gen, shard=i,
                                    concurrency=concurrency,
                                    base_service_id=BASE_SID,
                                    pipeline=pipeline, **server_kw)
                        for i, node in enumerate(nodes)]
        #: nodes reserved for shards a future :meth:`resize` adds; they
        #: count as server nodes for placement (harnesses must not put
        #: clients there) even while idle.
        self._spare_nodes = list(reserve_nodes or [])
        #: the in-flight :class:`MigrationPlan` (None outside a resize and
        #: after its forwarding window closes)
        self.migration: Optional[MigrationPlan] = None
        self._last_plan: Optional[MigrationPlan] = None
        #: bumped at every range cutover; snapshot it to tell whether an
        #: answer crossed a flip (see :class:`RoutingView` and the
        #: router's cache admission)
        self.routing_epoch = 0
        #: live routers (connect registers, close deregisters): the resize
        #: driver attaches new shards and pushes cutover invalidations here
        self._routers: List["ShardRouter"] = []
        #: migration-event hooks ``fn(kind, **attrs)`` (benchmark
        #: annotation, tests)
        self.on_migration: list = []
        self._migr_stubs: Dict[Tuple[int, int], object] = {}
        reg = obs.current()
        if reg is not None:
            # Live key balance as a pull probe: unlike the load-time
            # ``hatkv.router.keys.shard<i>`` gauges this is re-read at
            # every sampler tick, so inserts show up in the stream as
            # they land rather than at the next bulk load.
            reg.probe("hatkv.keys", self._key_balance)
            # Per-range migration progress, same pull-probe shape: the
            # stream shows ranges walking MIGRATING -> CUTOVER -> DONE.
            reg.probe("hatkv.migration", self._migration_progress)
            self._m_migr_events = reg.counter("hatkv.migration.events")
        else:
            self._m_migr_events = None

    def _key_balance(self) -> dict:
        return {f"shard{i}": float(s.backend.env.stat().entries)
                for i, s in enumerate(self.servers)}

    def _migration_progress(self) -> dict:
        plan = self.migration or self._last_plan
        return plan.progress() if plan is not None else {}

    # -- topology ------------------------------------------------------------
    @property
    def sim(self):
        return self.servers[0].node.sim

    @property
    def nodes(self) -> list:
        """Every node the cluster owns -- serving shards AND reserved
        spares, so placement logic keeps clients off future shard homes."""
        return [s.node for s in self.servers] + list(self._spare_nodes)

    def primary(self, key: bytes) -> int:
        if self.migration is not None:
            pref = self.migration.preference(_hash64(key))
            if pref is not None:
                return pref[0]
        return self.ring.shard_of(key)

    def replica_shards(self, primary: int) -> Tuple[int, ...]:
        """The shards holding a key whose ring owner is ``primary``:
        the owner plus its ``replicas - 1`` successors in shard order."""
        return tuple((primary + j) % self.n_shards
                     for j in range(self.replicas))

    def preference(self, key: bytes) -> Tuple[int, ...]:
        """The replica set currently serving ``key``.  Under an active
        migration the covering range's plan entry wins: its old set stays
        authoritative through CUTOVER, its new set from the flip on.
        Arcs the resize does not touch have identical sets under both
        rings, so the static path below is exact for them throughout."""
        if self.migration is not None:
            pref = self.migration.preference(_hash64(key))
            if pref is not None:
                return pref
        return self.replica_shards(self.ring.shard_of(key))

    def read_fallback(self, key: bytes) -> Tuple[int, ...]:
        """Shards still holding ``key``'s pre-cutover copy (the dual-read
        forwarding window); () outside a migration."""
        if self.migration is None:
            return ()
        return self.migration.read_fallback(_hash64(key))

    def routing_view(self) -> RoutingView:
        """A frozen resolver for epoch-consistent dedup (see
        :class:`RoutingView`)."""
        return RoutingView(self)

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> "ShardedKVCluster":
        for s in self.servers:
            s.start()
        return self

    def stop(self) -> None:
        for stub in self._migr_stubs.values():
            stub._hatrpc.close()
        self._migr_stubs.clear()
        for s in self.servers:
            s.stop()

    def load(self, items) -> None:
        """Bulk-load (key, value) pairs into every owning shard's LMDB
        (no RPC -- the untimed YCSB load phase), and publish the key
        distribution as per-shard gauges."""
        counts = [0] * self.n_shards
        txns = [s.backend.env.begin(write=True) for s in self.servers]
        try:
            for key, value in items:
                primary = self.primary(key)
                counts[primary] += 1
                for shard in self.replica_shards(primary):
                    txns[shard].put(key, value)
        finally:
            for txn in txns:
                txn.__exit__(None, None, None)
        reg = obs.current()
        if reg is not None:
            for i, n in enumerate(counts):
                reg.gauge(f"hatkv.router.keys.shard{i}").set(n)

    def connect(self, node, deadline: Optional[float] = None,
                retry_policy=None, rng=None, tunable: bool = False,
                tuner=None, cache: bool = True,
                cache_capacity: int = 4096):
        """Coroutine: a :class:`ShardRouter` on ``node``, with one engine
        channel set per shard (per-shard plan, window, and breakers).

        ``tuner`` attaches one (shareable) HintTuner to every shard
        engine -- all shard plans are built from the same hint map, so
        their shapes match the tuner's bind invariant.  The cluster's
        servers must be built with ``tunable=True`` to serve the
        alternate channels.

        When the gen module's IDL marks Get ``cacheable`` (and ``cache``
        is left on), the router gets a per-client
        :class:`~repro.hatkv.cache.HotKeyCache` sitting above the shard
        fan-out; ``cache=False`` opts a client out (e.g. a cache-off
        baseline against the same cluster).  Passing a
        :class:`~repro.hatkv.cache.HotKeyCache` instance instead shares
        that cache with other routers -- the per-machine shape, where
        every client process on a node reads through (and invalidates)
        one cache.

        The router registers with the cluster: a later :meth:`resize`
        connects it to the new shards before any range flips, and pushes
        per-range cache invalidations at each cutover.
        """
        connect_kw = dict(deadline=deadline, retry_policy=retry_policy,
                          rng=rng, tunable=tunable, tuner=tuner)
        stubs = []
        for i, server in enumerate(self.servers):
            stub = yield from connect_hatkv(
                node, server.node, self.gen,
                concurrency=self.concurrency,
                base_service_id=BASE_SID,
                pipeline=self.pipeline, trace_attrs={"shard": i},
                **connect_kw)
            stubs.append(stub)
        if isinstance(cache, HotKeyCache):
            kv_cache = cache
        else:
            kv_cache = cache_for(node, self.gen, cache_capacity) if cache \
                else None
        router = ShardRouter(self, node, stubs, cache=kv_cache,
                             connect_kw=connect_kw)
        self._routers.append(router)
        return router

    @property
    def requests(self) -> int:
        return sum(s.requests for s in self.servers)

    # -- elastic resize ------------------------------------------------------
    def start_resize(self, n_shards: int, **kw):
        """Kick off :meth:`resize` as a detached process (the load-aware
        trigger's entry point) and return the process handle."""
        return self.sim.process(self.resize(n_shards, **kw),
                                name=f"hatkv-resize-{n_shards}")

    def resize(self, n_shards: int, catchup_rounds: int = 2,
               batch: int = 64):
        """Coroutine: live ring resize to ``n_shards`` with key migration.

        Grow stands the new shards up on reserved nodes and attaches
        every live router to them; shrink retires the dropped shards
        after their data has moved and their forwarding window closed.
        Ranges migrate one at a time (copy -> catch-up -> fence ->
        fenced delta -> flip), so the write fence only ever covers one
        arc's keys and p99 disturbance stays bounded.  See
        :mod:`repro.hatkv.migration` for the protocol.
        """
        if self.migration is not None:
            raise RuntimeError("a resize is already in flight")
        if n_shards == self.n_shards:
            return
        old_n = self.n_shards
        old_ring = self.ring
        new_ring = old_ring.resize(n_shards)
        plan = MigrationPlan(self.sim, old_ring, new_ring,
                             replicas=self.replicas,
                             forward_window=self.forward_window)
        added: List[HatKVServer] = []
        for i in range(old_n, n_shards):
            if not self._spare_nodes:
                raise RuntimeError(
                    "resize needs reserve_nodes for the added shards")
            srv = HatKVServer(self._spare_nodes.pop(0), self.gen, shard=i,
                              concurrency=self.concurrency,
                              base_service_id=BASE_SID,
                              pipeline=self.pipeline,
                              **self._server_kw).start()
            self.servers.append(srv)
            added.append(srv)
        self.migration = plan
        self._last_plan = plan
        # Arm the write fence everywhere: from here on, a range that
        # completes its cutover is refused by its old owner.
        for srv in self.servers:
            srv.install_handoff(HandoffGuard(plan, srv.shard))
        # Every live router must reach the new shards before any range
        # can flip to them.
        for router in list(self._routers):
            yield from router.attach_shards(added, first_shard=old_n)
        self._fire("resize_start", n_from=old_n, n_to=n_shards,
                   ranges=len(plan.tasks))
        buckets = self._bucket_keys(plan)
        for task in plan.tasks:
            yield from self._migrate_range(
                plan, task, buckets.get(id(task), []),
                batch=batch, catchup_rounds=catchup_rounds)
        # Every range flipped: the new ring is the whole routing truth.
        self.ring = new_ring
        self.n_shards = n_shards
        self._fire("resize_cutover_complete", epoch=self.routing_epoch)
        # Dual-read forwarding window: the old copies keep backstopping
        # post-cutover misses until it closes, then they are dropped.
        yield self.sim.timeout(plan.forward_window)
        dropped = self._cleanup(plan)
        self._fire("cleanup_done", keys_dropped=dropped)
        for stub in self._migr_stubs.values():
            stub._hatrpc.close()
        self._migr_stubs.clear()
        if n_shards < old_n:
            for router in list(self._routers):
                yield from router.detach_shards(old_n - n_shards)
            retired = self.servers[n_shards:]
            del self.servers[n_shards:]
            for srv in retired:
                srv.stop()
                self._spare_nodes.append(srv.node)
        self.migration = None
        self._fire("resize_done", n_shards=n_shards)

    def _fire(self, kind: str, **attrs) -> None:
        if self._m_migr_events is not None:
            self._m_migr_events.inc()
        for fn in list(self.on_migration):
            fn(kind, **attrs)

    def _bucket_keys(self, plan: MigrationPlan) -> Dict[int, List[bytes]]:
        """Existing keys grouped by the migrating range covering them.

        Each distinct source primary's backend is enumerated exactly once
        (keys only -- values are read with simulated cost when their
        batch streams).  Replica-held copies are skipped: the range's
        ``src[0]`` backend is the authoritative copy source.
        """
        buckets: Dict[int, List[bytes]] = {}
        for shard in sorted({t.src[0] for t in plan.tasks}):
            with self.servers[shard].backend.env.begin() as txn:
                rows = txn.cursor().scan()
            for k, _v in rows:
                t = plan.covering(_hash64(k))
                if t is not None and t.src[0] == shard:
                    buckets.setdefault(id(t), []).append(k)
        return buckets

    def _migrate_range(self, plan: MigrationPlan, task, keys,
                       batch: int = 64, catchup_rounds: int = 2):
        """Coroutine: walk one range through its migration states.

        The cutover block below is deliberately yield-free between
        setting ``CUTOVER`` and sampling ``task.inflight``: the
        cooperative sim makes the two atomic, so the in-flight count it
        drains on is exact and a write can never slip between the fence
        closing and the drain starting.
        """
        sim = self.sim
        task.keys_total = len(keys)
        task.seen.update(keys)
        task.state = RangeState.MIGRATING
        self._fire("range_migrating", lo=task.lo, hi=task.hi,
                   src=task.src, dst=task.dst, keys=len(keys))
        # Initial snapshot + unfenced catch-up rounds: writes keep landing
        # on the old owners and dirty-marking, each round shrinks the
        # delta the fenced pass below must ship.
        yield from self._copy_keys(task, keys, batch)
        for _ in range(catchup_rounds):
            if not task.dirty:
                break
            delta = sorted(task.dirty)
            task.dirty.clear()
            yield from self._copy_keys(task, delta, batch)
        # -- cutover: fence new writes, drain in-flight ones -----------------
        task.fence = Event(sim)
        task.state = RangeState.CUTOVER
        self._fire("range_cutover", lo=task.lo, hi=task.hi,
                   inflight=task.inflight)
        if task.inflight:
            task._drain = Event(sim)
            yield task._drain
        if task.dirty:
            delta = sorted(task.dirty)
            task.dirty.clear()
            yield from self._copy_keys(task, delta, batch)
        # -- flip: the range's routing truth moves to the new owners ---------
        self.routing_epoch += 1
        task.done_epoch = self.routing_epoch
        task.done_at = sim.now
        task.state = RangeState.DONE
        task.fence.succeed()   # parked writers re-resolve to the new owners
        for router in list(self._routers):
            router._on_range_done(task)
        self._fire("range_done", lo=task.lo, hi=task.hi,
                   epoch=self.routing_epoch, keys_moved=task.keys_moved)

    def _copy_keys(self, task, keys, batch: int):
        """Coroutine: stream ``keys`` of one range to its new holders.

        Reads are costed backend batches on the source primary; writes
        ride pipelined ``multi_put`` RPCs over server-to-server stubs --
        migration shares the RPC substrate (and its windows and hints)
        with client traffic instead of a magic side channel.  Keys that
        vanished since they were dirty-marked propagate as pipelined
        Deletes, so a removal during the copy cannot resurrect at the new
        owner.  Version floors are adopted before each batch lands:
        client-visible versions stay monotonic across the handoff.
        """
        if not keys:
            return
        src = self.servers[task.src[0]]
        for i in range(0, len(keys), batch):
            chunk = list(keys[i:i + batch])
            values = yield from src.backend.multi_get(chunk)
            present = [(k, v) for k, v in zip(chunk, values)
                       if v is not None]
            absent = [k for k, v in zip(chunk, values) if v is None]
            for dst in task.copy_targets:
                dst_srv = self.servers[dst]
                if dst_srv.leases is not None and src.leases is not None:
                    for k in chunk:
                        dst_srv.leases.adopt(k, src.leases.version(k))
                stub = yield from self._migr_stub(task.src[0], dst)
                if present:
                    yield from _pipelined_multi_put(
                        stub, [k for k, _ in present],
                        [v for _, v in present])
                if absent:
                    yield from _pipelined_multi_delete(stub, absent)
            task.keys_moved += len(present)
            task.bytes_moved += sum(len(k) + len(v) for k, v in present)

    def _migr_stub(self, src: int, dst: int):
        """Coroutine: the (cached) server-to-server stub one copy stream
        rides; closed when the resize completes."""
        stub = self._migr_stubs.get((src, dst))
        if stub is None:
            stub = yield from connect_hatkv(
                self.servers[src].node, self.servers[dst].node, self.gen,
                concurrency=self.concurrency, base_service_id=BASE_SID,
                pipeline=self.pipeline)
            self._migr_stubs[(src, dst)] = stub
        return stub

    def _cleanup(self, plan: MigrationPlan) -> int:
        """Drop the handed-off copies once the forwarding window closes
        (direct backend deletes -- control plane, like :meth:`load`)."""
        dropped = 0
        for task in plan.tasks:
            for shard in task.drop_targets:
                backend = self.servers[shard].backend
                with backend.env.begin(write=True) as txn:
                    for k in sorted(task.seen):
                        if txn.delete(k):
                            dropped += 1
            task.cleaned = True
        return dropped


class ShardRouter:
    """Client-side shard fan-out with the stub's coroutine API.

    One generated stub (and HatRPC engine) per shard; every op routes by
    key through the cluster's ring.  Reads fail over along the key's
    preference list; swept in-flight reads are handed to a replica
    engine through the engine's ``sweep_reroute`` hook; writes fan to all
    replicas and surface transport errors typed, never blindly re-sent.

    During a resize the router is migration-aware: writes pass the
    cutover fence (:meth:`_write_intent`) so none straddles a flip,
    cache admission is epoch-tagged, post-cutover misses retry the
    range's previous holders for the forwarding window, and each range
    flip invalidates exactly that range's cached keys.
    """

    def __init__(self, cluster: ShardedKVCluster, node, stubs, cache=None,
                 connect_kw: Optional[dict] = None):
        self.cluster = cluster
        self.node = node
        self.cache = cache
        self._connect_kw = dict(connect_kw or {})
        self._stubs = list(stubs)
        self._clients = [s._hatrpc for s in stubs]
        self._callers = [c.async_caller() for c in self._clients]
        self._engines = [c.engine for c in self._clients]
        self._result_cls = cluster.gen.GetResult
        self._hot = [e.hot_read_channel() for e in self._engines] \
            if cache is not None else [None] * len(self._engines)
        reg = obs.current()
        if reg is not None:
            self._m_ops = [reg.counter(f"hatkv.router.shard{i}.ops")
                           for i in range(len(self._stubs))]
            self._m_reroutes = reg.counter("hatkv.router.reroutes")
            self._m_read_failovers = reg.counter("hatkv.router.read_failovers")
            self._m_forward = reg.counter("hatkv.router.forward_reads")
        else:
            self._m_ops = None
            self._m_reroutes = None
            self._m_read_failovers = None
            self._m_forward = None
        self._rerouting: set = set()       # (fn, seqid) pairs in takeover
        self._closed = False
        #: bumped at every swept-call takeover; reads snapshot it before
        #: issuing and only feed the cache when it did not move (a reply
        #: that raced a takeover may itself be a replica's answer,
        #: delivered transparently through the original handle)
        self._takeover_gen = 0
        for shard, engine in enumerate(self._engines):
            engine.sweep_reroute = self._reroute_hook(shard)

    # -- elastic topology ----------------------------------------------------
    def attach_shards(self, servers, first_shard: int):
        """Coroutine: connect this router to shards a resize added, with
        the same connect options (deadline, retries, tuner) its original
        shards got.  Called by the resize driver before any range flips,
        so a flipped range's new owners are always reachable."""
        reg = obs.current()
        for i, server in enumerate(servers, start=first_shard):
            stub = yield from connect_hatkv(
                self.node, server.node, self.cluster.gen,
                concurrency=self.cluster.concurrency,
                base_service_id=BASE_SID,
                pipeline=self.cluster.pipeline, trace_attrs={"shard": i},
                **self._connect_kw)
            client = stub._hatrpc
            engine = client.engine
            self._stubs.append(stub)
            self._clients.append(client)
            self._callers.append(client.async_caller())
            self._engines.append(engine)
            self._hot.append(engine.hot_read_channel()
                             if self.cache is not None else None)
            if self._m_ops is not None and reg is not None:
                self._m_ops.append(reg.counter(f"hatkv.router.shard{i}.ops"))
            engine.sweep_reroute = self._reroute_hook(i)

    def detach_shards(self, count: int):
        """Coroutine: drain and drop the highest-numbered ``count`` shard
        channel sets (a shrink's retired shards).  Uses the engine's
        drain-and-close so pipelined tails settle instead of failing."""
        for _ in range(count):
            self._stubs.pop()
            client = self._clients.pop()
            self._callers.pop()
            engine = self._engines.pop()
            self._hot.pop()
            if self._m_ops is not None:
                self._m_ops.pop()
            engine.sweep_reroute = None
            yield from engine.drain_close()
            client.close()

    def _on_range_done(self, task) -> None:
        """Cutover hook: drop cached entries for exactly the flipped
        range -- their provenance (the old owners) just stopped being
        authoritative.  Everything else keeps serving."""
        if self.cache is not None:
            self.cache.invalidate_match(lambda k: task.contains(_hash64(k)))

    # -- the migration write gate --------------------------------------------
    def _write_intent(self, key):
        """Coroutine: gate one write on the cutover fence, count it
        in-flight, and resolve the replica set it must land on.

        There is no yield between the final fence check, the
        registration, and the preference resolution: the cooperative sim
        makes the three atomic, which is what guarantees a write is
        counted against -- and lands on -- exactly one side of a cutover
        (so a Put can never be acknowledged by two primaries).  Returns
        ``(task_or_None, preference)``; the caller must settle the task
        with ``task.settle_write(key)`` in a finally block.
        """
        plan = self.cluster.migration
        if plan is None:
            return None, self.cluster.preference(key)
        h = _hash64(key)
        while True:
            fence = plan.fence_of(h)
            if fence is None:
                break
            yield fence
        return plan.write_begin(h), self.cluster.preference(key)

    def _write_intent_many(self, keys):
        """Coroutine: :meth:`_write_intent` over a batch -- wait out every
        covering fence, then register and resolve all keys in one atomic
        step."""
        plan = self.cluster.migration
        if plan is None:
            return ([None] * len(keys),
                    [self.cluster.preference(k) for k in keys])
        hashes = [_hash64(k) for k in keys]
        while True:
            fences = {id(f): f for h in hashes
                      for f in (plan.fence_of(h),) if f is not None}
            if not fences:
                break
            for f in fences.values():
                yield f
        tokens = [plan.write_begin(h) for h in hashes]
        prefs = [self.cluster.preference(k) for k in keys]
        return tokens, prefs

    # -- swept-call takeover -------------------------------------------------
    def _reroute_hook(self, shard: int):
        """hook(entry, exc) consulted by shard ``shard``'s engine when an
        idempotent in-flight call dies with every local channel exhausted.
        Successor replication means any replica of this shard can serve
        the entry without decoding its key."""
        def hook(entry, exc) -> bool:
            if self._closed:
                return False               # close() fences new takeovers
            if self.cluster.migration is not None:
                # Replica sets are per-range during a resize, and a swept
                # channel's calls span ranges: there is no single engine
                # that can serve them all.  Fail typed; idempotent reads
                # retry through normal routing.
                return False
            if entry.seqid is None:
                return False               # cannot dedupe a takeover chain
            if (entry.fn, entry.seqid) in self._rerouting:
                # This IS a takeover attempt (posted by _reroute_entry);
                # shard ``shard``'s own successors do not hold the key, so
                # let the takeover loop walk the original replica list.
                return False
            replicas = [r for r in self.cluster.replica_shards(shard)[1:]
                        if self._engines[r].is_open()]
            if not replicas:
                return False
            self._takeover_gen += 1
            if self.cache is not None:
                # Takeover = shard-scoped topology event.  The cache only
                # admits primary answers, so exactly the keys primaried on
                # this shard are suspect -- the rest of the node's hot set
                # keeps serving through the flap.
                self.cache.invalidate_match(
                    lambda k: self.cluster.primary(k) == shard)
            self._rerouting.add((entry.fn, entry.seqid))
            self.node.sim.process(
                self._reroute_entry(entry, replicas),
                name=f"reroute-{entry.fn}-s{shard}")
            return True
        return hook

    def _reroute_entry(self, entry, replicas):
        """Detached process: re-post one swept call's raw message on the
        key's replica shards (in preference order) and settle the original
        handle with the outcome.  The replica server echoes the request
        seqid, so the caller's paused stub decoder accepts the response
        unchanged.  Checks the close fence at every step: a takeover must
        never resolve a handle against a router that died under it."""
        last: Optional[Exception] = None
        try:
            for shard in replicas:
                if self._closed:
                    break
                eng = self._engines[shard]
                if not eng.is_open():
                    continue
                try:
                    handle = yield from eng.call_async(
                        entry.fn, entry.message, oneway=entry.oneway,
                        seqid=entry.seqid)
                    resp = yield from handle.wait()
                except Exception as exc:
                    last = exc
                    continue
                if self._closed:
                    break      # the router closed while the takeover flew
                if self._m_reroutes is not None:
                    self._m_reroutes.inc()
                if not entry.handle.done:
                    entry.handle._resolve(resp)
                return
            if not entry.handle.done:
                if self._closed:
                    entry.handle._fail(TTransportException(
                        TTransportException.NOT_OPEN,
                        f"router closed during {entry.fn} takeover"))
                else:
                    entry.handle._fail(last if last is not None
                                       else TTransportException(
                                           TTransportException.NOT_OPEN,
                                           f"no live replica for {entry.fn}"))
        finally:
            self._rerouting.discard((entry.fn, entry.seqid))

    def _count(self, shard: int) -> None:
        if self._m_ops is not None:
            self._m_ops[shard].inc()

    def _serve_hit(self, key, entry):
        """Coroutine: one cache-served Get (hit cost + trace stage)."""
        yield self.node.compute(HIT_COST)
        trace_cache_hit(self._engines[self.cluster.primary(key)], "Get",
                        entry)
        return cache_hit_result(self._result_cls, entry)

    def _forward_read(self, key, shards):
        """Coroutine: the dual-read forwarding fallback -- retry a
        post-cutover miss on the range's previous holders.  A hit here is
        returned but never cached (the old copy stops being authoritative
        when the window closes)."""
        for r in shards:
            if r >= len(self._stubs):
                continue
            self._count(r)
            try:
                result = yield from self._stubs[r].Get(key)
            except TTransportException:
                continue
            if result.found:
                if self._m_forward is not None:
                    self._m_forward.inc()
                return result
        return None

    # -- the stub API --------------------------------------------------------
    def Get(self, key):
        """Coroutine: GetResult for ``key``; the hot-key cache sits above
        the shard fan-out, and reads fail over in preference order when a
        shard's transport is down.  Failover answers may lag the primary,
        so they invalidate the key and are never cached; the same applies
        to answers that crossed a takeover or a migration cutover
        (epoch-tagged admission)."""
        cache = self.cache
        if cache is not None:
            entry = cache.lookup(key)
            if entry is not None:
                return (yield from self._serve_hit(key, entry))
        last: Optional[Exception] = None
        gen0 = (self._takeover_gen, self.cluster.routing_epoch)
        for hop, shard in enumerate(self.cluster.preference(key)):
            self._count(shard)
            issued = self.node.sim.now
            try:
                if hop == 0 and cache is not None and cache.promoted(key) \
                        and self._hot[shard] is not None \
                        and self._engines[shard].channel_saturated("Get"):
                    cache.count_hot_read()
                    h = yield from self._callers[shard].call_async(
                        "Get", key, channel=self._hot[shard])
                    result = yield from h.wait()
                else:
                    result = yield from self._stubs[shard].Get(key)
            except TTransportException as exc:
                last = exc
                continue
            if hop == 0 and not result.found \
                    and self.cluster.migration is not None:
                fb = self.cluster.read_fallback(key)
                if fb and shard not in fb:
                    fwd = yield from self._forward_read(key, fb)
                    if fwd is not None:
                        return fwd
            if hop or (self._takeover_gen,
                       self.cluster.routing_epoch) != gen0:
                if self._m_read_failovers is not None and hop:
                    self._m_read_failovers.inc()
                if cache is not None:
                    cache.invalidate(key)
            elif cache is not None:
                cache.admit(key, result, issued=issued)
            return result
        raise last

    def Put(self, key, value):
        """Coroutine: store ``key`` on every replica of its shard.

        Primary-first ordering: the owner's write must land before any
        replica is touched, so a Put that fails because the owner is
        unreachable raises its typed transport error with every replica
        still holding the pre-write value -- the router never
        blind-retries writes and never lets a replica get ahead of its
        primary.  Under a migration the write first passes the cutover
        fence and is counted in-flight against its range."""
        token, pref = yield from self._write_intent(key)
        try:
            for shard in pref:
                self._count(shard)
            yield from self._stubs[pref[0]].Put(key, value)
            if len(pref) > 1:
                handles = []
                for shard in pref[1:]:
                    handles.append(
                        (yield from self._callers[shard].call_async(
                            "Put", key, value)))
                first: Optional[Exception] = None
                for h in handles:
                    try:
                        yield from h.wait()
                    except Exception as exc:
                        if first is None:
                            first = exc
                if first is not None:
                    raise first
        finally:
            if token is not None:
                token.settle_write(key)
            if self.cache is not None:
                self.cache.invalidate(key)

    def Delete(self, key):
        """Coroutine: remove ``key`` from every replica of its shard,
        primary-first (same write discipline -- and migration write gate
        -- as :meth:`Put`)."""
        token, pref = yield from self._write_intent(key)
        try:
            for shard in pref:
                self._count(shard)
            yield from self._stubs[pref[0]].Delete(key)
            if len(pref) > 1:
                handles = []
                for shard in pref[1:]:
                    handles.append(
                        (yield from self._callers[shard].call_async(
                            "Delete", key)))
                first: Optional[Exception] = None
                for h in handles:
                    try:
                        yield from h.wait()
                    except Exception as exc:
                        if first is None:
                            first = exc
                if first is not None:
                    raise first
        finally:
            if token is not None:
                token.settle_write(key)
            if self.cache is not None:
                self.cache.invalidate(key)

    def MultiGet(self, keys):
        """Coroutine: values for ``keys`` (b"" when absent), fanned as one
        server-side MultiGet per shard, reassembled in request order.
        Cached keys are served locally (batch replies carry no versions,
        so misses are not admitted here)."""
        cache = self.cache
        out: List[Optional[bytes]] = [None] * len(keys)
        groups: Dict[int, Tuple[List[int], List[bytes]]] = {}
        for pos, key in enumerate(keys):
            if cache is not None:
                entry = cache.lookup(key)
                if entry is not None:
                    yield self.node.compute(HIT_COST)
                    trace_cache_hit(
                        self._engines[self.cluster.primary(key)],
                        "MultiGet", entry)
                    out[pos] = entry.value if entry.found else b""
                    continue
            shard = self.cluster.primary(key)
            positions, subkeys = groups.setdefault(shard, ([], []))
            positions.append(pos)
            subkeys.append(key)
        handles = []
        for shard, (positions, subkeys) in groups.items():
            self._count(shard)
            handles.append((shard, positions, subkeys,
                            (yield from self._callers[shard].call_async(
                                "MultiGet", subkeys))))
        for shard, positions, subkeys, h in handles:
            try:
                values = yield from h.wait()
            except TTransportException:
                values = yield from self._multi_get_fallback(shard, subkeys)
                if cache is not None:
                    for key in subkeys:
                        cache.invalidate(key)
            for pos, value in zip(positions, values):
                out[pos] = value
        return out

    def _multi_get_fallback(self, shard: int, subkeys):
        """Coroutine: re-read one shard's sub-batch from its replicas.

        Statically all keys primaried on ``shard`` share one replica set,
        so the whole sub-batch retries on each successor.  During a
        migration that invariant is gone (replica sets are per-range), so
        the fallback degrades to per-key replica reads."""
        if self.cluster.migration is not None:
            values = []
            for key in subkeys:
                r = yield from self._get_from_replicas(shard, key)
                values.append(r.value if r.found else b"")
            return values
        last: Optional[Exception] = None
        for r in self.cluster.replica_shards(shard)[1:]:
            self._count(r)
            try:
                values = yield from self._stubs[r].MultiGet(subkeys)
            except TTransportException as exc:
                last = exc
                continue
            if self._m_read_failovers is not None:
                self._m_read_failovers.inc()
            return values
        raise last if last is not None else TTransportException(
            TTransportException.NOT_OPEN,
            f"shard {shard} unreachable and no replicas configured")

    def MultiPut(self, keys, values):
        """Coroutine: store a batch, one server-side MultiPut per shard
        per replica.  Two phases with the same primary-first rule as
        :meth:`Put`: every primary write settles before any replica is
        touched; the first failure raises after its phase settles.  The
        whole batch passes the migration write gate up front."""
        if len(keys) != len(values):
            raise ValueError("keys/values length mismatch")
        tokens, prefs = yield from self._write_intent_many(keys)
        try:
            primary: Dict[int, Tuple[List[bytes], List[bytes]]] = {}
            replica: Dict[int, Tuple[List[bytes], List[bytes]]] = {}
            for key, value, pref in zip(keys, values, prefs):
                for phase, shard in zip(
                        (primary,) + (replica,) * (len(pref) - 1), pref):
                    ks, vs = phase.setdefault(shard, ([], []))
                    ks.append(key)
                    vs.append(value)
            for phase in (primary, replica):
                handles = []
                for shard, (ks, vs) in phase.items():
                    self._count(shard)
                    handles.append(
                        (yield from self._callers[shard].call_async(
                            "MultiPut", ks, vs)))
                first: Optional[Exception] = None
                for h in handles:
                    try:
                        yield from h.wait()
                    except Exception as exc:
                        if first is None:
                            first = exc
                if first is not None:
                    raise first
        finally:
            for key, token in zip(keys, tokens):
                if token is not None:
                    token.settle_write(key)
            if self.cache is not None:
                for key in keys:
                    self.cache.invalidate(key)

    def Scan(self, start_key, count):
        """Coroutine: global scan -- hash sharding scatters key ranges, so
        every shard scans locally and the router merges the fronts.

        Replication surfaces a key from several shards, and a replica's
        copy may lag its primary (a write is applied primary-first, so a
        scan racing the replica fan-out -- or failing over mid-scan --
        can read the pre-write value there).  Dedup therefore prefers the
        row whose *answering* shard is the key's ring owner -- resolved
        against a :class:`RoutingView` frozen before the legs were
        issued, so a resize flipping a range *between merged rows* cannot
        re-rank a stale replica copy above the fresh one.  During a
        migration, rows from shards outside a key's current (or
        forwarding) replica set are dropped: a partially copied range on
        its future owner must not leak half-moved rows into the merge."""
        view = self.cluster.routing_view()
        handles = []
        for shard in range(len(self._stubs)):
            self._count(shard)
            handles.append((shard, (yield from self._callers[
                shard].call_async("Scan", start_key, count))))
        migrating = self.cluster.migration is not None
        # key -> (came_from_primary, value)
        best: Dict[bytes, Tuple[bool, bytes]] = {}
        for shard, h in handles:
            src = shard
            try:
                flat = yield from h.wait()
            except TTransportException:
                src, flat = yield from self._scan_fallback(
                    shard, start_key, count)
            for i in range(0, len(flat), 2):
                k, v = flat[i], flat[i + 1]
                if migrating:
                    holders = set(self.cluster.preference(k)) \
                        | set(self.cluster.read_fallback(k))
                    if src not in holders:
                        continue
                primary = view.primary(k) == src
                cur = best.get(k)
                if cur is None or (primary and not cur[0]):
                    best[k] = (primary, v)
        out: List[bytes] = []
        for k in sorted(best):
            out.append(k)
            out.append(best[k][1])
            if len(out) == 2 * count:
                break
        return out

    def _scan_fallback(self, shard: int, start_key, count):
        """Coroutine: re-run one shard's scan leg on its replicas; returns
        ``(answering_shard, flat_rows)`` so the merge can tell the rows
        were not primary answers."""
        last: Optional[Exception] = None
        for r in self.cluster.replica_shards(shard)[1:]:
            self._count(r)
            try:
                flat = yield from self._stubs[r].Scan(start_key, count)
            except TTransportException as exc:
                last = exc
                continue
            if self._m_read_failovers is not None:
                self._m_read_failovers.inc()
            return r, flat
        raise last if last is not None else TTransportException(
            TTransportException.NOT_OPEN,
            f"shard {shard} unreachable and no replicas configured")

    # -- pipelined client-side batching (mirrors repro.hatkv.client) --------
    def multi_get(self, keys):
        """Coroutine: one pipelined single-key Get per key, fanned across
        shards under each shard channel's in-flight window; values come
        back in request order (b"" when absent).  Cache hits are served
        locally, promoted misses ride the hot-read channel, primary
        replies feed the cache (epoch-tagged), and failover replies
        invalidate."""
        cache = self.cache
        out: List[Optional[bytes]] = [None] * len(keys)
        pending = []
        gen0 = (self._takeover_gen, self.cluster.routing_epoch)
        for i, key in enumerate(keys):
            if cache is not None:
                entry = cache.lookup(key)
                if entry is not None:
                    yield self.node.compute(HIT_COST)
                    trace_cache_hit(
                        self._engines[self.cluster.primary(key)],
                        "Get", entry)
                    out[i] = entry.value if entry.found else b""
                    continue
            shard = self.cluster.primary(key)
            self._count(shard)
            chan = None
            if cache is not None and cache.promoted(key) \
                    and self._hot[shard] is not None \
                    and self._engines[shard].channel_saturated("Get"):
                cache.count_hot_read()
                chan = self._hot[shard]
            issued = self.node.sim.now
            pending.append(
                (i, shard, key, issued,
                 (yield from self._callers[shard].call_async(
                     "Get", key, channel=chan))))
        for i, shard, key, issued, h in pending:
            try:
                result = yield from h.wait()
            except TTransportException:
                result = yield from self._get_from_replicas(shard, key)
                if cache is not None:
                    cache.invalidate(key)
            else:
                if not result.found and self.cluster.migration is not None:
                    fb = self.cluster.read_fallback(key)
                    if fb and shard not in fb:
                        fwd = yield from self._forward_read(key, fb)
                        if fwd is not None:
                            out[i] = fwd.value
                            continue
                if cache is not None:
                    if (self._takeover_gen,
                            self.cluster.routing_epoch) != gen0:
                        cache.invalidate(key)
                    else:
                        cache.admit(key, result, issued=issued)
            out[i] = result.value if result.found else b""
        return out

    def _get_from_replicas(self, shard: int, key: bytes):
        """Coroutine: per-key read failover along the key's *current*
        preference list (plan-aware during a migration), skipping the
        shard that already failed."""
        last: Optional[Exception] = None
        for r in self.cluster.preference(key):
            if r == shard:
                continue
            self._count(r)
            try:
                result = yield from self._stubs[r].Get(key)
            except TTransportException as exc:
                last = exc
                continue
            if self._m_read_failovers is not None:
                self._m_read_failovers.inc()
            return result
        raise last if last is not None else TTransportException(
            TTransportException.NOT_OPEN,
            f"shard {shard} unreachable and no replicas configured")

    def multi_put(self, keys, values):
        """Coroutine: one pipelined single-key Put per key per replica,
        primaries settling before replicas (see :meth:`Put`).  Replica
        sets are resolved once, under the migration write gate -- a
        re-resolve between hops could split one write across both sides
        of a cutover."""
        if len(keys) != len(values):
            raise ValueError("keys/values length mismatch")
        tokens, prefs = yield from self._write_intent_many(keys)
        try:
            for hop in range(self.cluster.replicas):
                handles = []
                for key, value, pref in zip(keys, values, prefs):
                    if hop >= len(pref):
                        continue
                    shard = pref[hop]
                    self._count(shard)
                    handles.append(
                        (yield from self._callers[shard].call_async(
                            "Put", key, value)))
                first: Optional[Exception] = None
                for h in handles:
                    try:
                        yield from h.wait()
                    except Exception as exc:
                        if first is None:
                            first = exc
                if first is not None:
                    raise first
        finally:
            for key, token in zip(keys, tokens):
                if token is not None:
                    token.settle_write(key)
            if self.cache is not None:
                for key in keys:
                    self.cache.invalidate(key)

    def close(self) -> None:
        """Tear down every shard client.

        Close is fenced against in-flight reroute takeovers through the
        chained-takeover guard: ``_closed`` flips before any engine dies,
        ``_reroute_hook`` refuses new takeovers outright, and a takeover
        already in flight observes the fence at its next step and fails
        its entry typed instead of resolving it against a dead router."""
        self._closed = True
        if self in self.cluster._routers:
            self.cluster._routers.remove(self)
        for client in self._clients:
            client.engine.sweep_reroute = None
            client.close()
