"""Sharded HatKV: consistent-hash routing over N HatKV servers.

The cluster side (:class:`ShardedKVCluster`) launches one
:class:`~repro.hatkv.server.HatKVServer` per shard on its own simulated
node, each with its own LMDB backend.  The client side
(:class:`ShardRouter`) opens one HatRPC channel set per shard -- each with
its own hint-resolved ServicePlan, pipeline window, breakers, and retry
state -- and maps keys onto shards with a consistent-hash ring
(:class:`HashRing`, virtual nodes for balance).

Replication is successor-based: a key's primary shard is its ring owner,
and its replicas are the next ``replicas - 1`` shards in shard order.
Every key on primary ``s`` therefore has the same replica set, which lets
the router fail a *whole channel's* swept reads over to one replica engine
without decoding per-call keys.  Reads fail over to replicas; writes fan
to every replica and surface typed transport errors instead of blindly
retrying (a re-sent write could double-apply).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Optional, Sequence, Tuple

from repro.thrift.errors import TTransportException

from repro import obs
from repro.hatkv.cache import (HIT_COST, HotKeyCache, cache_hit_result,
                               trace_cache_hit)
from repro.hatkv.client import (IDEMPOTENT_FUNCTIONS, cache_for,
                                connect_hatkv)
from repro.hatkv.idl import load_hatkv_module
from repro.hatkv.server import BASE_SID, SERVICE, HatKVServer

__all__ = ["HashRing", "ShardRouter", "ShardedKVCluster"]


def _hash64(data: bytes) -> int:
    # md5 over Python's salted hash(): ring placement must be identical
    # across processes and runs for results to be replayable.
    return int.from_bytes(hashlib.md5(data).digest()[:8], "big")


class HashRing:
    """Consistent-hash ring: ``vnodes`` points per shard for balance.

    ``shard_of(key)`` is the first point clockwise from the key's hash.
    Adding or removing one shard only remaps the keys on that shard's
    arcs, which is the property that makes resharding incremental.
    """

    def __init__(self, n_shards: int, vnodes: int = 256, seed: int = 0):
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.n_shards = n_shards
        self.vnodes = vnodes
        self.seed = seed
        points: List[Tuple[int, int]] = []
        for shard in range(n_shards):
            for v in range(vnodes):
                points.append((_hash64(f"{seed}:{shard}:{v}".encode()),
                               shard))
        points.sort()
        self._hashes = [h for h, _ in points]
        self._shards = [s for _, s in points]

    def shard_of(self, key: bytes) -> int:
        idx = bisect.bisect_right(self._hashes, _hash64(key))
        if idx == len(self._hashes):
            idx = 0  # wrap past the highest point
        return self._shards[idx]

    def distribution(self, keys) -> List[int]:
        """Keys-per-shard histogram (the router's balance gauge feed)."""
        counts = [0] * self.n_shards
        for key in keys:
            counts[self.shard_of(key)] += 1
        return counts


class ShardedKVCluster:
    """N HatKV servers on distinct sim nodes behind one consistent ring."""

    def __init__(self, testbed, n_shards: int,
                 gen_module=None, variant: str = "function",
                 replicas: int = 1, vnodes: int = 256,
                 server_nodes: Optional[Sequence] = None,
                 concurrency: Optional[int] = None,
                 pipeline: bool = True,
                 ring_seed: int = 0,
                 **server_kw):
        if not 1 <= replicas <= n_shards:
            raise ValueError("need 1 <= replicas <= n_shards")
        self.testbed = testbed
        self.n_shards = n_shards
        self.replicas = replicas
        self.pipeline = pipeline
        self.concurrency = concurrency
        self.gen = gen_module or load_hatkv_module(variant)
        self.ring = HashRing(n_shards, vnodes=vnodes, seed=ring_seed)
        nodes = (list(server_nodes) if server_nodes is not None
                 else testbed.nodes[:n_shards])
        if len(nodes) != n_shards:
            raise ValueError(f"need {n_shards} server nodes, got {len(nodes)}")
        self.servers = [HatKVServer(node, self.gen, shard=i,
                                    concurrency=concurrency,
                                    base_service_id=BASE_SID,
                                    pipeline=pipeline, **server_kw)
                        for i, node in enumerate(nodes)]
        reg = obs.current()
        if reg is not None:
            # Live key balance as a pull probe: unlike the load-time
            # ``hatkv.router.keys.shard<i>`` gauges this is re-read at
            # every sampler tick, so inserts show up in the stream as
            # they land rather than at the next bulk load.
            reg.probe("hatkv.keys", self._key_balance)

    def _key_balance(self) -> dict:
        return {f"shard{i}": float(s.backend.env.stat().entries)
                for i, s in enumerate(self.servers)}

    # -- topology ------------------------------------------------------------
    @property
    def nodes(self) -> list:
        return [s.node for s in self.servers]

    def primary(self, key: bytes) -> int:
        return self.ring.shard_of(key)

    def replica_shards(self, primary: int) -> Tuple[int, ...]:
        """The shards holding a key whose ring owner is ``primary``:
        the owner plus its ``replicas - 1`` successors in shard order."""
        return tuple((primary + j) % self.n_shards
                     for j in range(self.replicas))

    def preference(self, key: bytes) -> Tuple[int, ...]:
        return self.replica_shards(self.primary(key))

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> "ShardedKVCluster":
        for s in self.servers:
            s.start()
        return self

    def stop(self) -> None:
        for s in self.servers:
            s.stop()

    def load(self, items) -> None:
        """Bulk-load (key, value) pairs into every owning shard's LMDB
        (no RPC -- the untimed YCSB load phase), and publish the key
        distribution as per-shard gauges."""
        counts = [0] * self.n_shards
        txns = [s.backend.env.begin(write=True) for s in self.servers]
        try:
            for key, value in items:
                primary = self.primary(key)
                counts[primary] += 1
                for shard in self.replica_shards(primary):
                    txns[shard].put(key, value)
        finally:
            for txn in txns:
                txn.__exit__(None, None, None)
        reg = obs.current()
        if reg is not None:
            for i, n in enumerate(counts):
                reg.gauge(f"hatkv.router.keys.shard{i}").set(n)

    def connect(self, node, deadline: Optional[float] = None,
                retry_policy=None, rng=None, tunable: bool = False,
                tuner=None, cache: bool = True,
                cache_capacity: int = 4096):
        """Coroutine: a :class:`ShardRouter` on ``node``, with one engine
        channel set per shard (per-shard plan, window, and breakers).

        ``tuner`` attaches one (shareable) HintTuner to every shard
        engine -- all shard plans are built from the same hint map, so
        their shapes match the tuner's bind invariant.  The cluster's
        servers must be built with ``tunable=True`` to serve the
        alternate channels.

        When the gen module's IDL marks Get ``cacheable`` (and ``cache``
        is left on), the router gets a per-client
        :class:`~repro.hatkv.cache.HotKeyCache` sitting above the shard
        fan-out; ``cache=False`` opts a client out (e.g. a cache-off
        baseline against the same cluster).  Passing a
        :class:`~repro.hatkv.cache.HotKeyCache` instance instead shares
        that cache with other routers -- the per-machine shape, where
        every client process on a node reads through (and invalidates)
        one cache.
        """
        stubs = []
        for i, server in enumerate(self.servers):
            stub = yield from connect_hatkv(
                node, server.node, self.gen,
                concurrency=self.concurrency,
                base_service_id=BASE_SID,
                deadline=deadline, retry_policy=retry_policy, rng=rng,
                pipeline=self.pipeline, trace_attrs={"shard": i},
                tunable=tunable, tuner=tuner)
            stubs.append(stub)
        if isinstance(cache, HotKeyCache):
            kv_cache = cache
        else:
            kv_cache = cache_for(node, self.gen, cache_capacity) if cache \
                else None
        return ShardRouter(self, node, stubs, cache=kv_cache)

    @property
    def requests(self) -> int:
        return sum(s.requests for s in self.servers)


class ShardRouter:
    """Client-side shard fan-out with the stub's coroutine API.

    One generated stub (and HatRPC engine) per shard; every op routes by
    key through the cluster's ring.  Reads fail over along the key's
    preference list; swept in-flight reads are handed to a replica
    engine through the engine's ``sweep_reroute`` hook; writes fan to all
    replicas and surface transport errors typed, never blindly re-sent.
    """

    def __init__(self, cluster: ShardedKVCluster, node, stubs, cache=None):
        self.cluster = cluster
        self.node = node
        self.cache = cache
        self._stubs = list(stubs)
        self._clients = [s._hatrpc for s in stubs]
        self._callers = [c.async_caller() for c in self._clients]
        self._engines = [c.engine for c in self._clients]
        self._result_cls = cluster.gen.GetResult
        self._hot = [e.hot_read_channel() for e in self._engines] \
            if cache is not None else [None] * len(self._engines)
        reg = obs.current()
        if reg is not None:
            self._m_ops = [reg.counter(f"hatkv.router.shard{i}.ops")
                           for i in range(cluster.n_shards)]
            self._m_reroutes = reg.counter("hatkv.router.reroutes")
            self._m_read_failovers = reg.counter("hatkv.router.read_failovers")
        else:
            self._m_ops = None
            self._m_reroutes = None
            self._m_read_failovers = None
        self._rerouting: set = set()       # (fn, seqid) pairs in takeover
        #: bumped at every swept-call takeover; reads snapshot it before
        #: issuing and only feed the cache when it did not move (a reply
        #: that raced a takeover may itself be a replica's answer,
        #: delivered transparently through the original handle)
        self._takeover_gen = 0
        for shard, engine in enumerate(self._engines):
            engine.sweep_reroute = self._reroute_hook(shard)

    # -- swept-call takeover -------------------------------------------------
    def _reroute_hook(self, shard: int):
        """hook(entry, exc) consulted by shard ``shard``'s engine when an
        idempotent in-flight call dies with every local channel exhausted.
        Successor replication means any replica of this shard can serve
        the entry without decoding its key."""
        def hook(entry, exc) -> bool:
            if entry.seqid is None:
                return False               # cannot dedupe a takeover chain
            if (entry.fn, entry.seqid) in self._rerouting:
                # This IS a takeover attempt (posted by _reroute_entry);
                # shard ``shard``'s own successors do not hold the key, so
                # let the takeover loop walk the original replica list.
                return False
            replicas = [r for r in self.cluster.replica_shards(shard)[1:]
                        if self._engines[r].is_open()]
            if not replicas:
                return False
            self._takeover_gen += 1
            if self.cache is not None:
                # Takeover = topology event: every cached entry's
                # provenance is suspect, so none may be served.
                self.cache.clear()
            self._rerouting.add((entry.fn, entry.seqid))
            self.node.sim.process(
                self._reroute_entry(entry, replicas),
                name=f"reroute-{entry.fn}-s{shard}")
            return True
        return hook

    def _reroute_entry(self, entry, replicas):
        """Detached process: re-post one swept call's raw message on the
        key's replica shards (in preference order) and settle the original
        handle with the outcome.  The replica server echoes the request
        seqid, so the caller's paused stub decoder accepts the response
        unchanged."""
        last: Optional[Exception] = None
        try:
            for shard in replicas:
                eng = self._engines[shard]
                if not eng.is_open():
                    continue
                try:
                    handle = yield from eng.call_async(
                        entry.fn, entry.message, oneway=entry.oneway,
                        seqid=entry.seqid)
                    resp = yield from handle.wait()
                except Exception as exc:
                    last = exc
                    continue
                if self._m_reroutes is not None:
                    self._m_reroutes.inc()
                if not entry.handle.done:
                    entry.handle._resolve(resp)
                return
            if not entry.handle.done:
                entry.handle._fail(last if last is not None
                                   else TTransportException(
                                       TTransportException.NOT_OPEN,
                                       f"no live replica for {entry.fn}"))
        finally:
            self._rerouting.discard((entry.fn, entry.seqid))

    def _count(self, shard: int) -> None:
        if self._m_ops is not None:
            self._m_ops[shard].inc()

    def _serve_hit(self, key, entry):
        """Coroutine: one cache-served Get (hit cost + trace stage)."""
        yield self.node.compute(HIT_COST)
        trace_cache_hit(self._engines[self.cluster.primary(key)], "Get",
                        entry)
        return cache_hit_result(self._result_cls, entry)

    # -- the stub API --------------------------------------------------------
    def Get(self, key):
        """Coroutine: GetResult for ``key``; the hot-key cache sits above
        the shard fan-out, and reads fail over in preference order when a
        shard's transport is down.  Failover answers may lag the primary,
        so they invalidate the key and are never cached."""
        cache = self.cache
        if cache is not None:
            entry = cache.lookup(key)
            if entry is not None:
                return (yield from self._serve_hit(key, entry))
        last: Optional[Exception] = None
        gen0 = self._takeover_gen
        for hop, shard in enumerate(self.cluster.preference(key)):
            self._count(shard)
            issued = self.node.sim.now
            try:
                if hop == 0 and cache is not None and cache.promoted(key) \
                        and self._hot[shard] is not None \
                        and self._engines[shard].channel_saturated("Get"):
                    cache.count_hot_read()
                    h = yield from self._callers[shard].call_async(
                        "Get", key, channel=self._hot[shard])
                    result = yield from h.wait()
                else:
                    result = yield from self._stubs[shard].Get(key)
            except TTransportException as exc:
                last = exc
                continue
            if hop or self._takeover_gen != gen0:
                if self._m_read_failovers is not None and hop:
                    self._m_read_failovers.inc()
                if cache is not None:
                    cache.invalidate(key)
            elif cache is not None:
                cache.admit(key, result, issued=issued)
            return result
        raise last

    def Put(self, key, value):
        """Coroutine: store ``key`` on every replica of its shard.

        Primary-first ordering: the owner's write must land before any
        replica is touched, so a Put that fails because the owner is
        unreachable raises its typed transport error with every replica
        still holding the pre-write value -- the router never
        blind-retries writes and never lets a replica get ahead of its
        primary."""
        try:
            pref = self.cluster.preference(key)
            for shard in pref:
                self._count(shard)
            yield from self._stubs[pref[0]].Put(key, value)
            if len(pref) == 1:
                return
            handles = []
            for shard in pref[1:]:
                handles.append((yield from self._callers[shard].call_async(
                    "Put", key, value)))
            first: Optional[Exception] = None
            for h in handles:
                try:
                    yield from h.wait()
                except Exception as exc:
                    if first is None:
                        first = exc
            if first is not None:
                raise first
        finally:
            if self.cache is not None:
                self.cache.invalidate(key)

    def Delete(self, key):
        """Coroutine: remove ``key`` from every replica of its shard,
        primary-first (same write discipline as :meth:`Put`)."""
        try:
            pref = self.cluster.preference(key)
            for shard in pref:
                self._count(shard)
            yield from self._stubs[pref[0]].Delete(key)
            if len(pref) == 1:
                return
            handles = []
            for shard in pref[1:]:
                handles.append((yield from self._callers[shard].call_async(
                    "Delete", key)))
            first: Optional[Exception] = None
            for h in handles:
                try:
                    yield from h.wait()
                except Exception as exc:
                    if first is None:
                        first = exc
            if first is not None:
                raise first
        finally:
            if self.cache is not None:
                self.cache.invalidate(key)

    def MultiGet(self, keys):
        """Coroutine: values for ``keys`` (b"" when absent), fanned as one
        server-side MultiGet per shard, reassembled in request order.
        Cached keys are served locally (batch replies carry no versions,
        so misses are not admitted here)."""
        cache = self.cache
        out: List[Optional[bytes]] = [None] * len(keys)
        groups: Dict[int, Tuple[List[int], List[bytes]]] = {}
        for pos, key in enumerate(keys):
            if cache is not None:
                entry = cache.lookup(key)
                if entry is not None:
                    yield self.node.compute(HIT_COST)
                    trace_cache_hit(
                        self._engines[self.cluster.primary(key)],
                        "MultiGet", entry)
                    out[pos] = entry.value if entry.found else b""
                    continue
            shard = self.cluster.primary(key)
            positions, subkeys = groups.setdefault(shard, ([], []))
            positions.append(pos)
            subkeys.append(key)
        handles = []
        for shard, (positions, subkeys) in groups.items():
            self._count(shard)
            handles.append((shard, positions, subkeys,
                            (yield from self._callers[shard].call_async(
                                "MultiGet", subkeys))))
        for shard, positions, subkeys, h in handles:
            try:
                values = yield from h.wait()
            except TTransportException:
                values = yield from self._multi_get_fallback(shard, subkeys)
                if cache is not None:
                    for key in subkeys:
                        cache.invalidate(key)
            for pos, value in zip(positions, values):
                out[pos] = value
        return out

    def _multi_get_fallback(self, shard: int, subkeys):
        """Coroutine: re-read one shard's sub-batch from its replicas
        (all keys primaried on ``shard`` share the same replica set)."""
        last: Optional[Exception] = None
        for r in self.cluster.replica_shards(shard)[1:]:
            self._count(r)
            try:
                values = yield from self._stubs[r].MultiGet(subkeys)
            except TTransportException as exc:
                last = exc
                continue
            if self._m_read_failovers is not None:
                self._m_read_failovers.inc()
            return values
        raise last if last is not None else TTransportException(
            TTransportException.NOT_OPEN,
            f"shard {shard} unreachable and no replicas configured")

    def MultiPut(self, keys, values):
        """Coroutine: store a batch, one server-side MultiPut per shard
        per replica.  Two phases with the same primary-first rule as
        :meth:`Put`: every primary write settles before any replica is
        touched; the first failure raises after its phase settles."""
        if len(keys) != len(values):
            raise ValueError("keys/values length mismatch")
        try:
            primary: Dict[int, Tuple[List[bytes], List[bytes]]] = {}
            replica: Dict[int, Tuple[List[bytes], List[bytes]]] = {}
            for key, value in zip(keys, values):
                pref = self.cluster.preference(key)
                for phase, shard in zip(
                        (primary,) + (replica,) * (len(pref) - 1), pref):
                    ks, vs = phase.setdefault(shard, ([], []))
                    ks.append(key)
                    vs.append(value)
            for phase in (primary, replica):
                handles = []
                for shard, (ks, vs) in phase.items():
                    self._count(shard)
                    handles.append(
                        (yield from self._callers[shard].call_async(
                            "MultiPut", ks, vs)))
                first: Optional[Exception] = None
                for h in handles:
                    try:
                        yield from h.wait()
                    except Exception as exc:
                        if first is None:
                            first = exc
                if first is not None:
                    raise first
        finally:
            if self.cache is not None:
                for key in keys:
                    self.cache.invalidate(key)

    def Scan(self, start_key, count):
        """Coroutine: global scan -- hash sharding scatters key ranges, so
        every shard scans locally and the router merges the fronts.

        Replication surfaces a key from several shards, and a replica's
        copy may lag its primary (a write is applied primary-first, so a
        scan racing the replica fan-out -- or failing over mid-scan --
        can read the pre-write value there).  Dedup therefore prefers the
        row whose *answering* shard is the key's ring owner; a replica's
        row only stands in when no primary answer arrived (that shard was
        down and its leg failed over)."""
        handles = []
        for shard in range(self.cluster.n_shards):
            self._count(shard)
            handles.append((shard, (yield from self._callers[
                shard].call_async("Scan", start_key, count))))
        # key -> (came_from_primary, value)
        best: Dict[bytes, Tuple[bool, bytes]] = {}
        for shard, h in handles:
            src = shard
            try:
                flat = yield from h.wait()
            except TTransportException:
                src, flat = yield from self._scan_fallback(
                    shard, start_key, count)
            for i in range(0, len(flat), 2):
                k, v = flat[i], flat[i + 1]
                primary = self.cluster.primary(k) == src
                cur = best.get(k)
                if cur is None or (primary and not cur[0]):
                    best[k] = (primary, v)
        out: List[bytes] = []
        for k in sorted(best):
            out.append(k)
            out.append(best[k][1])
            if len(out) == 2 * count:
                break
        return out

    def _scan_fallback(self, shard: int, start_key, count):
        """Coroutine: re-run one shard's scan leg on its replicas; returns
        ``(answering_shard, flat_rows)`` so the merge can tell the rows
        were not primary answers."""
        last: Optional[Exception] = None
        for r in self.cluster.replica_shards(shard)[1:]:
            self._count(r)
            try:
                flat = yield from self._stubs[r].Scan(start_key, count)
            except TTransportException as exc:
                last = exc
                continue
            if self._m_read_failovers is not None:
                self._m_read_failovers.inc()
            return r, flat
        raise last if last is not None else TTransportException(
            TTransportException.NOT_OPEN,
            f"shard {shard} unreachable and no replicas configured")

    # -- pipelined client-side batching (mirrors repro.hatkv.client) --------
    def multi_get(self, keys):
        """Coroutine: one pipelined single-key Get per key, fanned across
        shards under each shard channel's in-flight window; values come
        back in request order (b"" when absent).  Cache hits are served
        locally, promoted misses ride the hot-read channel, primary
        replies feed the cache, and failover replies invalidate."""
        cache = self.cache
        out: List[Optional[bytes]] = [None] * len(keys)
        pending = []
        gen0 = self._takeover_gen
        for i, key in enumerate(keys):
            if cache is not None:
                entry = cache.lookup(key)
                if entry is not None:
                    yield self.node.compute(HIT_COST)
                    trace_cache_hit(
                        self._engines[self.cluster.primary(key)],
                        "Get", entry)
                    out[i] = entry.value if entry.found else b""
                    continue
            shard = self.cluster.primary(key)
            self._count(shard)
            chan = None
            if cache is not None and cache.promoted(key) \
                    and self._hot[shard] is not None \
                    and self._engines[shard].channel_saturated("Get"):
                cache.count_hot_read()
                chan = self._hot[shard]
            issued = self.node.sim.now
            pending.append(
                (i, shard, key, issued,
                 (yield from self._callers[shard].call_async(
                     "Get", key, channel=chan))))
        for i, shard, key, issued, h in pending:
            try:
                result = yield from h.wait()
            except TTransportException:
                result = yield from self._get_from_replicas(shard, key)
                if cache is not None:
                    cache.invalidate(key)
            else:
                if cache is not None:
                    if self._takeover_gen != gen0:
                        cache.invalidate(key)
                    else:
                        cache.admit(key, result, issued=issued)
            out[i] = result.value if result.found else b""
        return out

    def _get_from_replicas(self, shard: int, key: bytes):
        last: Optional[Exception] = None
        for r in self.cluster.replica_shards(shard)[1:]:
            self._count(r)
            try:
                result = yield from self._stubs[r].Get(key)
            except TTransportException as exc:
                last = exc
                continue
            if self._m_read_failovers is not None:
                self._m_read_failovers.inc()
            return result
        raise last if last is not None else TTransportException(
            TTransportException.NOT_OPEN,
            f"shard {shard} unreachable and no replicas configured")

    def multi_put(self, keys, values):
        """Coroutine: one pipelined single-key Put per key per replica,
        primaries settling before replicas (see :meth:`Put`)."""
        if len(keys) != len(values):
            raise ValueError("keys/values length mismatch")
        try:
            for hop in range(self.cluster.replicas):
                handles = []
                for key, value in zip(keys, values):
                    pref = self.cluster.preference(key)
                    if hop >= len(pref):
                        continue
                    shard = pref[hop]
                    self._count(shard)
                    handles.append(
                        (yield from self._callers[shard].call_async(
                            "Put", key, value)))
                first: Optional[Exception] = None
                for h in handles:
                    try:
                        yield from h.wait()
                    except Exception as exc:
                        if first is None:
                            first = exc
                if first is not None:
                    raise first
        finally:
            if self.cache is not None:
                for key in keys:
                    self.cache.invalidate(key)

    def close(self) -> None:
        for client in self._clients:
            client.engine.sweep_reroute = None
            client.close()
