"""HatKV: the key-value store co-designed with HatRPC and LMDB (Section 4.4).

The pieces map one-to-one onto Figure 10:

* :mod:`repro.hatkv.idl` -- the KVService IDL with the paper's hint sets
  (service-level ``concurrency``/``perf_goal``; per-function payload-size
  hints sized for GET/PUT/MultiGET/MultiPUT with 24-byte keys, 1000-byte
  values, batch 10);
* :mod:`repro.hatkv.backend` -- the LMDB adapter, including the hint-driven
  backend tuning the paper describes (max_readers from the concurrency
  hint; sync/commit strategy keyed to the chosen protocol's goal);
* :mod:`repro.hatkv.server` / :mod:`repro.hatkv.client` -- the HatRPC
  service assembly.
"""

from repro.hatkv.idl import hatkv_idl, load_hatkv_module
from repro.hatkv.backend import BackendCosts, LmdbBackend
from repro.hatkv.cache import HotKeyCache
from repro.hatkv.migration import (MigrationPlan, RangeHandedOffError,
                                   RangeState, ResizeTrigger)
from repro.hatkv.server import HatKVServer, LeaseTable
from repro.hatkv.client import KVClient, cache_for, connect_hatkv
from repro.hatkv.sharding import HashRing, ShardRouter, ShardedKVCluster

__all__ = [
    "BackendCosts",
    "HashRing",
    "HatKVServer",
    "HotKeyCache",
    "KVClient",
    "LeaseTable",
    "LmdbBackend",
    "MigrationPlan",
    "RangeHandedOffError",
    "RangeState",
    "ResizeTrigger",
    "ShardRouter",
    "ShardedKVCluster",
    "cache_for",
    "connect_hatkv",
    "hatkv_idl",
    "load_hatkv_module",
]
