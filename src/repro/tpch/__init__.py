"""TPC-H: data generator, 22 queries, and a distributed executor.

Substitutes for the paper's "commercial database system applying the HatRPC
approach" (Section 5.5): a columnar mini-engine executes the standard TPC-H
queries over partitioned data on the simulated cluster, and the inter-node
exchange operators run over the RPC layer under test (vanilla Thrift on
IPoIB, HatRPC-Service, or HatRPC-Function).  Compute cost is charged per
row touched; exchange traffic is the actual serialized bytes of the
intermediate results, shipped in framed chunks as a Thrift-based engine
would stream them.
"""

from repro.tpch.schema import SCHEMA, TABLES
from repro.tpch.table import Table
from repro.tpch.datagen import generate
from repro.tpch.queries import QUERIES, run_query
from repro.tpch.distributed import DistributedTpch, TpchResult

__all__ = [
    "DistributedTpch",
    "QUERIES",
    "SCHEMA",
    "TABLES",
    "Table",
    "TpchResult",
    "generate",
    "run_query",
]
