"""Deterministic TPC-H data generator (dbgen equivalent).

Value distributions follow the TPC-H specification where the queries
depend on them (date ranges, discount/quantity ranges, brand/type/container
vocabularies, market segments, order priorities, return flags derived from
receipt dates); free-text fields are short placeholders to keep memory
proportional to what the queries actually touch.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.tpch.schema import BASE_ROWS, date_to_int
from repro.tpch.table import Table

__all__ = ["generate"]

REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]
SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
SHIPMODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
SHIPINSTRUCT = ["DELIVER IN PERSON", "COLLECT COD", "NONE",
                "TAKE BACK RETURN"]
CONTAINERS = [f"{a} {b}" for a in ("SM", "LG", "MED", "JUMBO", "WRAP")
              for b in ("CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN",
                        "DRUM")]
TYPE_S1 = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
TYPE_S2 = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"]
TYPE_S3 = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]

#: order dates span 1992-01-01 .. 1998-08-02 per the spec.
_MIN_ORDER_DATE = 0
_MAX_ORDER_DATE = date_to_int("1998-08-02")
_CURRENT_DATE = date_to_int("1995-06-17")  # spec's 'currentdate' anchor


def _pick(rng, choices, n):
    return np.asarray(choices, dtype=object)[rng.integers(0, len(choices), n)]


def generate(sf: float = 0.01, seed: int = 0) -> Dict[str, Table]:
    """Generate a full database at the given scale factor."""
    rng = np.random.default_rng(seed)
    db: Dict[str, Table] = {}

    def count(table: str) -> int:
        base = BASE_ROWS[table]
        return base if table in ("region", "nation") else max(
            1, int(base * sf))

    # -- region / nation (fixed) ---------------------------------------------
    db["region"] = Table({
        "r_regionkey": np.arange(5, dtype=np.int64),
        "r_name": np.asarray(REGIONS, dtype=object),
        "r_comment": np.asarray(["" for _ in REGIONS], dtype=object),
    })
    db["nation"] = Table({
        "n_nationkey": np.arange(25, dtype=np.int64),
        "n_name": np.asarray([n for n, _ in NATIONS], dtype=object),
        "n_regionkey": np.asarray([r for _, r in NATIONS], dtype=np.int64),
        "n_comment": np.asarray(["" for _ in NATIONS], dtype=object),
    })

    # -- supplier --------------------------------------------------------------
    ns = count("supplier")
    db["supplier"] = Table({
        "s_suppkey": np.arange(1, ns + 1, dtype=np.int64),
        "s_name": np.asarray([f"Supplier#{i:09d}" for i in range(1, ns + 1)],
                             dtype=object),
        "s_address": _pick(rng, ["addr"], ns),
        "s_nationkey": rng.integers(0, 25, ns),
        "s_phone": _pick(rng, ["11-111-111-1111", "22-222-222-2222"], ns),
        "s_acctbal": np.round(rng.uniform(-999.99, 9999.99, ns), 2),
        "s_comment": _pick(rng, ["", "Customer Complaints", ""], ns),
    })

    # -- customer ----------------------------------------------------------------
    nc = count("customer")
    db["customer"] = Table({
        "c_custkey": np.arange(1, nc + 1, dtype=np.int64),
        "c_name": np.asarray([f"Customer#{i:09d}" for i in range(1, nc + 1)],
                             dtype=object),
        "c_address": _pick(rng, ["caddr"], nc),
        "c_nationkey": rng.integers(0, 25, nc),
        "c_phone": np.asarray([f"{rng.integers(10, 35)}-000-000-0000"
                               for _ in range(nc)], dtype=object),
        "c_acctbal": np.round(rng.uniform(-999.99, 9999.99, nc), 2),
        "c_mktsegment": _pick(rng, SEGMENTS, nc),
        "c_comment": _pick(rng, ["", "special requests", ""], nc),
    })

    # -- part ------------------------------------------------------------------------
    np_ = count("part")
    types = [f"{a} {b} {c}" for a in TYPE_S1 for b in TYPE_S2
             for c in TYPE_S3]
    db["part"] = Table({
        "p_partkey": np.arange(1, np_ + 1, dtype=np.int64),
        "p_name": _pick(rng, ["forest green metallic", "green blush",
                              "ivory khaki", "powder puff",
                              "forest powder drab"], np_),
        "p_mfgr": _pick(rng, [f"Manufacturer#{i}" for i in range(1, 6)], np_),
        "p_brand": _pick(rng, [f"Brand#{i}{j}" for i in range(1, 6)
                               for j in range(1, 6)], np_),
        "p_type": _pick(rng, types, np_),
        "p_size": rng.integers(1, 51, np_),
        "p_container": _pick(rng, CONTAINERS, np_),
        "p_retailprice": np.round(900 + rng.uniform(0, 200, np_), 2),
        "p_comment": _pick(rng, [""], np_),
    })

    # -- partsupp ----------------------------------------------------------------------
    nps = count("partsupp")
    db["partsupp"] = Table({
        "ps_partkey": rng.integers(1, np_ + 1, nps),
        "ps_suppkey": rng.integers(1, ns + 1, nps),
        "ps_availqty": rng.integers(1, 10_000, nps),
        "ps_supplycost": np.round(rng.uniform(1.0, 1000.0, nps), 2),
        "ps_comment": _pick(rng, [""], nps),
    })

    # -- orders ---------------------------------------------------------------------------
    no = count("orders")
    odate = rng.integers(_MIN_ORDER_DATE, _MAX_ORDER_DATE - 121, no)
    # Per the spec, orders reference only two thirds of the customers
    # (custkeys that are multiples of 3 never order) -- Q22 depends on it.
    cust_pool = np.arange(1, nc + 1, dtype=np.int64)
    cust_pool = cust_pool[cust_pool % 3 != 0]
    db["orders"] = Table({
        "o_orderkey": np.arange(1, no + 1, dtype=np.int64),
        "o_custkey": rng.choice(cust_pool, no),
        "o_orderstatus": _pick(rng, ["F", "O", "P"], no),
        "o_totalprice": np.round(rng.uniform(1000, 400000, no), 2),
        "o_orderdate": odate,
        "o_orderpriority": _pick(rng, PRIORITIES, no),
        "o_clerk": _pick(rng, [f"Clerk#{i:09d}" for i in range(1, 21)], no),
        "o_shippriority": np.zeros(no, dtype=np.int64),
        "o_comment": _pick(rng, ["", "special deposits",
                                 "special requests pending"], no),
    })

    # -- lineitem: 1..7 lines per order (mean ~4) ---------------------------------------------
    lines_per_order = rng.integers(1, 8, no)
    nl = int(lines_per_order.sum())
    l_orderkey = np.repeat(db["orders"]["o_orderkey"], lines_per_order)
    l_odate = np.repeat(odate, lines_per_order)
    shipdelay = rng.integers(1, 122, nl)
    l_ship = l_odate + shipdelay
    l_commit = l_odate + rng.integers(30, 91, nl)
    l_receipt = l_ship + rng.integers(1, 31, nl)
    qty = rng.integers(1, 51, nl).astype(np.float64)
    price = np.round(qty * (900 + rng.uniform(0, 200, nl)) / 10, 2)
    returned = l_receipt <= _CURRENT_DATE
    rflag = np.where(returned,
                     np.where(rng.random(nl) < 0.5, "R", "A"), "N")
    db["lineitem"] = Table({
        "l_orderkey": l_orderkey,
        "l_partkey": rng.integers(1, np_ + 1, nl),
        "l_suppkey": rng.integers(1, ns + 1, nl),
        "l_linenumber": np.concatenate(
            [np.arange(1, c + 1) for c in lines_per_order]),
        "l_quantity": qty,
        "l_extendedprice": price,
        "l_discount": np.round(rng.integers(0, 11, nl) / 100.0, 2),
        "l_tax": np.round(rng.integers(0, 9, nl) / 100.0, 2),
        "l_returnflag": rflag.astype(object),
        "l_linestatus": np.where(l_ship > _CURRENT_DATE, "O", "F").astype(object),
        "l_shipdate": l_ship,
        "l_commitdate": l_commit,
        "l_receiptdate": l_receipt,
        "l_shipinstruct": _pick(rng, SHIPINSTRUCT, nl),
        "l_shipmode": _pick(rng, SHIPMODES, nl),
        "l_comment": _pick(rng, [""], nl),
    })
    return db
