"""TPC-H schema: the eight tables and their columns.

Dates are stored as integer days since 1992-01-01 (the TPC-H epoch);
decimals as float64; identifiers as int64; low-cardinality strings as
object arrays of short Python strings.
"""

from __future__ import annotations

from datetime import date as _date

__all__ = ["BASE_ROWS", "SCHEMA", "TABLES", "date_to_int", "int_to_date"]

_EPOCH = _date(1992, 1, 1)


def date_to_int(iso: str) -> int:
    """'1994-01-01' -> days since the TPC-H epoch."""
    y, m, d = map(int, iso.split("-"))
    return (_date(y, m, d) - _EPOCH).days


def int_to_date(days: int) -> str:
    from datetime import timedelta
    return (_EPOCH + timedelta(days=int(days))).isoformat()


#: column -> kind ('id' int64, 'int' int64, 'dec' float64, 'date' int64 days,
#: 'str' object)
SCHEMA = {
    "region": {
        "r_regionkey": "id", "r_name": "str", "r_comment": "str",
    },
    "nation": {
        "n_nationkey": "id", "n_name": "str", "n_regionkey": "id",
        "n_comment": "str",
    },
    "supplier": {
        "s_suppkey": "id", "s_name": "str", "s_address": "str",
        "s_nationkey": "id", "s_phone": "str", "s_acctbal": "dec",
        "s_comment": "str",
    },
    "customer": {
        "c_custkey": "id", "c_name": "str", "c_address": "str",
        "c_nationkey": "id", "c_phone": "str", "c_acctbal": "dec",
        "c_mktsegment": "str", "c_comment": "str",
    },
    "part": {
        "p_partkey": "id", "p_name": "str", "p_mfgr": "str",
        "p_brand": "str", "p_type": "str", "p_size": "int",
        "p_container": "str", "p_retailprice": "dec", "p_comment": "str",
    },
    "partsupp": {
        "ps_partkey": "id", "ps_suppkey": "id", "ps_availqty": "int",
        "ps_supplycost": "dec", "ps_comment": "str",
    },
    "orders": {
        "o_orderkey": "id", "o_custkey": "id", "o_orderstatus": "str",
        "o_totalprice": "dec", "o_orderdate": "date",
        "o_orderpriority": "str", "o_clerk": "str", "o_shippriority": "int",
        "o_comment": "str",
    },
    "lineitem": {
        "l_orderkey": "id", "l_partkey": "id", "l_suppkey": "id",
        "l_linenumber": "int", "l_quantity": "dec", "l_extendedprice": "dec",
        "l_discount": "dec", "l_tax": "dec", "l_returnflag": "str",
        "l_linestatus": "str", "l_shipdate": "date", "l_commitdate": "date",
        "l_receiptdate": "date", "l_shipinstruct": "str",
        "l_shipmode": "str", "l_comment": "str",
    },
}

TABLES = tuple(SCHEMA)

#: row counts at scale factor 1.0 (lineitem is ~4.0 per order on average).
BASE_ROWS = {
    "region": 5,
    "nation": 25,
    "supplier": 10_000,
    "customer": 150_000,
    "part": 200_000,
    "partsupp": 800_000,
    "orders": 1_500_000,
    "lineitem": 6_001_215,
}
