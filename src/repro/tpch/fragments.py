"""Per-query distributed plans: worker fragment + coordinator final.

Partitioning: ``orders`` and ``lineitem`` are striped by ``o_orderkey``
(colocated); the dimension tables are replicated on every node.  Each plan
is a (fragment, final) pair:

* ``fragment(partition_db) -> Table`` runs on a worker over its stripe and
  produces a mergeable partial (pre-aggregated wherever algebra allows --
  means are decomposed into sum+count);
* ``final(merged, dims_db) -> Table`` runs on the coordinator over the
  concatenated partials plus the replicated dimensions.

Queries touching only replicated dimensions (Q2, Q11, Q16) produce empty
partials and compute entirely in ``final`` -- their exchange is control
traffic only, which is why the paper's Fig. 17 shows near-zero gain on
some queries.

The composition ``final(concat(fragment(p) for p in partitions))`` must
equal the single-node query -- ``tests/tpch/test_distributed.py`` checks
that equivalence for every query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

from repro.tpch.queries import (
    _contains, _isin, _rev, _startswith, d, q2, q11, q16,
)
from repro.tpch.table import Table

__all__ = ["PLANS", "QueryPlan"]


def _empty() -> Table:
    return Table({"_none": np.zeros(0, dtype=np.int64)})


@dataclass(frozen=True)
class QueryPlan:
    fragment: Callable
    final: Callable
    #: tables whose partition rows the worker scans (compute charging)
    touches: tuple
    #: replicated tables the coordinator's final stage scans
    final_touches: tuple = ()


# -- Q1 -------------------------------------------------------------------
def _f1(db):
    li = db["lineitem"]
    t = li.filter(li["l_shipdate"] <= d("1998-12-01") - 90)
    t = t.with_column("disc_price", _rev(t))
    t = t.with_column("charge", _rev(t) * (1 + t["l_tax"]))
    return t.group_by(["l_returnflag", "l_linestatus"], {
        "sum_qty": ("sum", "l_quantity"),
        "sum_base_price": ("sum", "l_extendedprice"),
        "sum_disc_price": ("sum", "disc_price"),
        "sum_charge": ("sum", "charge"),
        "sum_disc": ("sum", "l_discount"),
        "count_order": ("count", "l_quantity"),
    })


def _m1(merged, dims):
    g = merged.group_by(["l_returnflag", "l_linestatus"], {
        "sum_qty": ("sum", "sum_qty"),
        "sum_base_price": ("sum", "sum_base_price"),
        "sum_disc_price": ("sum", "sum_disc_price"),
        "sum_charge": ("sum", "sum_charge"),
        "sum_disc": ("sum", "sum_disc"),
        "count_order": ("sum", "count_order"),
    })
    n = g["count_order"]
    g = g.with_column("avg_qty", g["sum_qty"] / n)
    g = g.with_column("avg_price", g["sum_base_price"] / n)
    g = g.with_column("avg_disc", g["sum_disc"] / n)
    out = g.select(["l_returnflag", "l_linestatus", "sum_qty",
                    "sum_base_price", "sum_disc_price", "sum_charge",
                    "avg_qty", "avg_price", "avg_disc", "count_order"])
    return out.sort([("l_returnflag", True), ("l_linestatus", True)])


# -- Q3 ------------------------------------------------------------------------
def _f3(db):
    cutoff = d("1995-03-15")
    c = db["customer"]
    c = c.filter(c["c_mktsegment"] == "BUILDING")
    o = db["orders"]
    o = o.filter(o["o_orderdate"] < cutoff).join(c, "o_custkey", "c_custkey")
    li = db["lineitem"]
    li = li.filter(li["l_shipdate"] > cutoff)
    t = li.join(o, "l_orderkey", "o_orderkey")
    t = t.with_column("rev", _rev(t))
    return t.group_by(["l_orderkey", "o_orderdate", "o_shippriority"],
                      {"revenue": ("sum", "rev")})


def _m3(merged, dims):
    return merged.sort([("revenue", False), ("o_orderdate", True),
                        ("l_orderkey", True)]).head(10)


# -- Q4 -----------------------------------------------------------------------------
def _f4(db):
    lo, hi = d("1993-07-01"), d("1993-10-01")
    o = db["orders"]
    o = o.filter((o["o_orderdate"] >= lo) & (o["o_orderdate"] < hi))
    li = db["lineitem"]
    late = li.filter(li["l_commitdate"] < li["l_receiptdate"])
    o = o.semi_join(late, "o_orderkey", "l_orderkey")
    return o.group_by(["o_orderpriority"],
                      {"order_count": ("count", "o_orderkey")})


def _m4(merged, dims):
    out = merged.group_by(["o_orderpriority"],
                          {"order_count": ("sum", "order_count")})
    return out.sort([("o_orderpriority", True)])


# -- Q5 ----------------------------------------------------------------------------------
def _f5(db):
    r = db["region"]
    r = r.filter(r["r_name"] == "ASIA")
    n = db["nation"].join(r, "n_regionkey", "r_regionkey")
    o = db["orders"]
    o = o.filter((o["o_orderdate"] >= d("1994-01-01"))
                 & (o["o_orderdate"] < d("1995-01-01")))
    c = db["customer"].join(n, "c_nationkey", "n_nationkey")
    o = o.join(c, "o_custkey", "c_custkey")
    li = db["lineitem"].join(o, "l_orderkey", "o_orderkey")
    li = li.join(db["supplier"], "l_suppkey", "s_suppkey")
    li = li.filter(li["s_nationkey"] == li["c_nationkey"])
    li = li.with_column("rev", _rev(li))
    return li.group_by(["n_name"], {"revenue": ("sum", "rev")})


def _m5(merged, dims):
    out = merged.group_by(["n_name"], {"revenue": ("sum", "revenue")})
    return out.sort([("revenue", False)])


# -- Q6 --------------------------------------------------------------------------------------
def _f6(db):
    from repro.tpch.queries import q6
    return q6(db)


def _m6(merged, dims):
    return Table({"revenue": np.asarray([merged["revenue"].sum()])})


# -- Q7 / Q8 / Q9: partial group sums, re-summed at the coordinator -----------
def _regroup(keys, sums):
    def final(merged, dims, _k=tuple(keys), _s=tuple(sums)):
        out = merged.group_by(list(_k), {s: ("sum", s) for s in _s})
        return out.sort([(k, True) for k in _k])
    return final


def _f7(db):
    from repro.tpch.queries import q7
    return q7(db)


def _f8(db):
    # partial: per-year total/brazil sums (before computing the share)
    from repro.tpch import queries as q
    p = db["part"]
    p = p.filter(p["p_type"] == "ECONOMY ANODIZED STEEL")
    r = db["region"]
    r = r.filter(r["r_name"] == "AMERICA")
    n_cust = db["nation"].join(r, "n_regionkey", "r_regionkey")
    o = db["orders"]
    o = o.filter((o["o_orderdate"] >= d("1995-01-01"))
                 & (o["o_orderdate"] <= d("1996-12-31")))
    c = db["customer"].join(n_cust, "c_nationkey", "n_nationkey")
    o = o.join(c, "o_custkey", "c_custkey")
    li = db["lineitem"].join(p, "l_partkey", "p_partkey")
    t = li.join(o, "l_orderkey", "o_orderkey")
    s = db["supplier"].join(db["nation"], "s_nationkey", "n_nationkey")
    s.cols["supp_nation"] = s["n_name"]
    t = t.join(s.select(["s_suppkey", "supp_nation"]),
               "l_suppkey", "s_suppkey")
    t = t.with_column("o_year",
                      (t["o_orderdate"] // 365.25).astype(np.int64) + 1992)
    t = t.with_column("volume", _rev(t))
    t = t.with_column("brazil_volume",
                      np.where(t["supp_nation"] == "BRAZIL",
                               t["volume"], 0.0))
    return t.group_by(["o_year"], {"total": ("sum", "volume"),
                                   "brazil": ("sum", "brazil_volume")})


def _m8(merged, dims):
    out = merged.group_by(["o_year"], {"total": ("sum", "total"),
                                       "brazil": ("sum", "brazil")})
    share = np.divide(out["brazil"], out["total"],
                      out=np.zeros(len(out)), where=out["total"] != 0)
    return out.with_column("mkt_share", share).sort([("o_year", True)])


def _f9(db):
    from repro.tpch.queries import q9
    return q9(db)


def _m9(merged, dims):
    out = merged.group_by(["n_name", "o_year"],
                          {"sum_profit": ("sum", "sum_profit")})
    return out.sort([("n_name", True), ("o_year", False)])


# -- Q10 ------------------------------------------------------------------------
def _f10(db):
    lo, hi = d("1993-10-01"), d("1994-01-01")
    o = db["orders"]
    o = o.filter((o["o_orderdate"] >= lo) & (o["o_orderdate"] < hi))
    li = db["lineitem"]
    li = li.filter(li["l_returnflag"] == "R")
    t = li.join(o, "l_orderkey", "o_orderkey")
    t = t.join(db["customer"], "o_custkey", "c_custkey")
    t = t.join(db["nation"].select(["n_nationkey", "n_name"]),
               "c_nationkey", "n_nationkey")
    t = t.with_column("rev", _rev(t))
    return t.group_by(["c_custkey", "c_name", "c_acctbal", "c_phone",
                       "n_name", "c_address", "c_comment"],
                      {"revenue": ("sum", "rev")})


def _m10(merged, dims):
    out = merged.group_by(["c_custkey", "c_name", "c_acctbal", "c_phone",
                           "n_name", "c_address", "c_comment"],
                          {"revenue": ("sum", "revenue")})
    return out.sort([("revenue", False), ("c_custkey", True)]).head(20)


# -- Q12 ---------------------------------------------------------------------------
def _f12(db):
    from repro.tpch.queries import q12
    return q12(db)


def _m12(merged, dims):
    out = merged.group_by(["l_shipmode"],
                          {"high_line_count": ("sum", "high_line_count"),
                           "low_line_count": ("sum", "low_line_count")})
    return out.sort([("l_shipmode", True)])


# -- Q13 -------------------------------------------------------------------------------
def _f13(db):
    o = db["orders"]
    keep = ~(_contains(o["o_comment"], "special")
             & _contains(o["o_comment"], "requests"))
    o = o.filter(keep)
    return o.group_by(["o_custkey"], {"c_count": ("count", "o_orderkey")})


def _m13(merged, dims):
    per_cust = merged.group_by(["o_custkey"],
                               {"c_count": ("sum", "c_count")})
    counts = {int(k): int(v) for k, v in zip(per_cust["o_custkey"],
                                             per_cust["c_count"])}
    dist: Dict[int, int] = {}
    for ck in dims["customer"]["c_custkey"].tolist():
        dist[counts.get(ck, 0)] = dist.get(counts.get(ck, 0), 0) + 1
    out = Table.from_rows(["c_count", "custdist"], sorted(dist.items()))
    return out.sort([("custdist", False), ("c_count", False)])


# -- Q14 -----------------------------------------------------------------------------------
def _f14(db):
    li = db["lineitem"]
    li = li.filter((li["l_shipdate"] >= d("1995-09-01"))
                   & (li["l_shipdate"] < d("1995-10-01")))
    t = li.join(db["part"].select(["p_partkey", "p_type"]),
                "l_partkey", "p_partkey")
    rev = _rev(t)
    promo = rev[np.asarray(_startswith(t["p_type"], "PROMO"))].sum()
    return Table({"promo": np.asarray([promo]),
                  "total": np.asarray([rev.sum()])})


def _m14(merged, dims):
    promo, total = merged["promo"].sum(), merged["total"].sum()
    return Table({"promo_revenue": np.asarray(
        [100.0 * promo / total if total else 0.0])})


# -- Q15 --------------------------------------------------------------------------------------
def _f15(db):
    li = db["lineitem"]
    li = li.filter((li["l_shipdate"] >= d("1996-01-01"))
                   & (li["l_shipdate"] < d("1996-04-01")))
    li = li.with_column("rev", _rev(li))
    return li.group_by(["l_suppkey"], {"total_revenue": ("sum", "rev")})


def _m15(merged, dims):
    if len(merged) == 0:
        return merged
    per_supp = merged.group_by(["l_suppkey"],
                               {"total_revenue": ("sum", "total_revenue")})
    best = per_supp["total_revenue"].max()
    top = per_supp.filter(per_supp["total_revenue"] == best)
    out = top.join(dims["supplier"], "l_suppkey", "s_suppkey")
    return out.select(["l_suppkey", "s_name", "s_address", "s_phone",
                       "total_revenue"]).sort([("l_suppkey", True)])


# -- Q17 ----------------------------------------------------------------------------------------
def _f17(db):
    p = db["part"]
    p = p.filter((p["p_brand"] == "Brand#23")
                 & (p["p_container"] == "MED BOX"))
    li = db["lineitem"].join(p.select(["p_partkey"]),
                             "l_partkey", "p_partkey")
    return li.select(["l_partkey", "l_quantity", "l_extendedprice"])


def _m17(merged, dims):
    if len(merged) == 0:
        return Table({"avg_yearly": np.asarray([0.0])})
    avg = merged.group_by(["l_partkey"], {"avg_qty": ("mean", "l_quantity")})
    t = merged.join(avg, "l_partkey", "l_partkey")
    small = t.filter(t["l_quantity"] < 0.2 * t["avg_qty"])
    return Table({"avg_yearly": np.asarray(
        [small["l_extendedprice"].sum() / 7.0])})


# -- Q18 -----------------------------------------------------------------------------------------
def _f18(db):
    li = db["lineitem"]
    per_order = li.group_by(["l_orderkey"],
                            {"sum_qty": ("sum", "l_quantity")})
    big = per_order.filter(per_order["sum_qty"] > 300)
    o = db["orders"].join(big, "o_orderkey", "l_orderkey")
    return o.select(["o_orderkey", "o_custkey", "o_orderdate",
                     "o_totalprice", "sum_qty"])


def _m18(merged, dims):
    t = merged.join(dims["customer"].select(["c_custkey", "c_name"]),
                    "o_custkey", "c_custkey")
    out = t.select(["c_name", "c_custkey", "o_orderkey", "o_orderdate",
                    "o_totalprice", "sum_qty"])
    return out.sort([("o_totalprice", False),
                     ("o_orderdate", True)]).head(100)


# -- Q19 -------------------------------------------------------------------------------------------
def _f19(db):
    from repro.tpch.queries import q19
    return q19(db)


def _m19(merged, dims):
    return Table({"revenue": np.asarray([merged["revenue"].sum()])})


# -- Q20 -----------------------------------------------------------------------------------------------
def _f20(db):
    p = db["part"]
    p = p.filter(_startswith(p["p_name"], "forest"))
    li = db["lineitem"].semi_join(p, "l_partkey", "p_partkey")
    li = li.filter((li["l_shipdate"] >= d("1994-01-01"))
                   & (li["l_shipdate"] < d("1995-01-01")))
    return li.group_by(["l_partkey", "l_suppkey"],
                       {"qty": ("sum", "l_quantity")})


def _m20(merged, dims):
    shipped: Dict[tuple, float] = {}
    for pk, sk, q in zip(merged["l_partkey"].tolist(),
                         merged["l_suppkey"].tolist(),
                         merged["qty"].tolist()):
        shipped[(pk, sk)] = shipped.get((pk, sk), 0.0) + q
    p = dims["part"]
    p = p.filter(_startswith(p["p_name"], "forest"))
    ps = dims["partsupp"].semi_join(p, "ps_partkey", "p_partkey")
    keep = np.fromiter(
        ((pk, sk) in shipped and avail > 0.5 * shipped[(pk, sk)]
         for pk, sk, avail in zip(ps["ps_partkey"].tolist(),
                                  ps["ps_suppkey"].tolist(),
                                  ps["ps_availqty"].tolist())),
        dtype=bool, count=len(ps))
    ps = ps.filter(keep)
    n = dims["nation"]
    n = n.filter(n["n_name"] == "CANADA")
    s = dims["supplier"].join(n, "s_nationkey", "n_nationkey")
    s = s.semi_join(ps, "s_suppkey", "ps_suppkey")
    return s.select(["s_name", "s_address"]).sort([("s_name", True)])


# -- Q21 --------------------------------------------------------------------------------------------------
def _f21(db):
    # per-supplier numwait over the local stripe (orders are colocated with
    # their lineitems, so the per-order supplier analysis is complete here)
    from repro.tpch.queries import _q21_counts
    return _q21_counts(db)


def _m21(merged, dims):
    if len(merged) == 0:
        return merged
    out = merged.group_by(["s_name"], {"numwait": ("sum", "numwait")})
    return out.sort([("numwait", False), ("s_name", True)]).head(100)


# -- Q22 ------------------------------------------------------------------------------------------------------
def _f22(db):
    o = db["orders"]
    custs = np.unique(o["o_custkey"])
    return Table({"o_custkey": custs})


def _m22(merged, dims):
    codes = {"13", "31", "23", "29", "30", "18", "17"}
    c = dims["customer"]
    cc = np.asarray([phone[:2] for phone in c["c_phone"]], dtype=object)
    c = c.with_column("cntrycode", cc)
    c = c.filter(_isin(c["cntrycode"], codes))
    if len(c) == 0:
        return Table.from_rows(["cntrycode", "numcust", "totacctbal"], [])
    positive = c.filter(c["c_acctbal"] > 0.0)
    avg_bal = positive["c_acctbal"].mean() if len(positive) else 0.0
    c = c.filter(c["c_acctbal"] > avg_bal)
    have_orders = set(merged["o_custkey"].tolist()) if len(merged) else set()
    mask = np.fromiter((ck not in have_orders
                        for ck in c["c_custkey"].tolist()),
                       dtype=bool, count=len(c))
    c = c.filter(mask)
    out = c.group_by(["cntrycode"], {"numcust": ("count", "c_custkey"),
                                     "totacctbal": ("sum", "c_acctbal")})
    return out.sort([("cntrycode", True)])


# -- dimension-only queries ------------------------------------------------------
def _dims_only(q):
    def final(merged, dims, _q=q):
        return _q(dims)
    return final


PLANS: Dict[int, QueryPlan] = {
    1: QueryPlan(_f1, _m1, ("lineitem",)),
    2: QueryPlan(lambda db: _empty(), _dims_only(q2), (),
                 final_touches=("part", "partsupp", "supplier")),
    3: QueryPlan(_f3, _m3, ("lineitem", "orders", "customer")),
    4: QueryPlan(_f4, _m4, ("lineitem", "orders")),
    5: QueryPlan(_f5, _m5, ("lineitem", "orders", "customer", "supplier")),
    6: QueryPlan(_f6, _m6, ("lineitem",)),
    7: QueryPlan(_f7, _regroup(["supp_nation", "cust_nation", "l_year"],
                               ["revenue"]),
                 ("lineitem", "orders", "customer", "supplier")),
    8: QueryPlan(_f8, _m8, ("lineitem", "orders", "customer", "part",
                            "supplier")),
    9: QueryPlan(_f9, _m9, ("lineitem", "orders", "part", "partsupp",
                            "supplier")),
    10: QueryPlan(_f10, _m10, ("lineitem", "orders", "customer")),
    11: QueryPlan(lambda db: _empty(), _dims_only(q11), (),
                  final_touches=("partsupp", "supplier")),
    12: QueryPlan(_f12, _m12, ("lineitem", "orders")),
    13: QueryPlan(_f13, _m13, ("orders",)),
    14: QueryPlan(_f14, _m14, ("lineitem", "part")),
    15: QueryPlan(_f15, _m15, ("lineitem",)),
    16: QueryPlan(lambda db: _empty(), _dims_only(q16), (),
                  final_touches=("part", "partsupp", "supplier")),
    17: QueryPlan(_f17, _m17, ("lineitem", "part")),
    18: QueryPlan(_f18, _m18, ("lineitem", "orders")),
    19: QueryPlan(_f19, _m19, ("lineitem", "part")),
    20: QueryPlan(_f20, _m20, ("lineitem", "part", "partsupp")),
    21: QueryPlan(_f21, _m21, ("lineitem", "orders", "supplier")),
    22: QueryPlan(_f22, _m22, ("orders",)),
}
