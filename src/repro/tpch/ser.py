"""Table serialization over TBinaryProtocol (the engine's exchange format).

Intermediate results travel between workers and the coordinator as Thrift
binary: per column a name, a kind tag ('i' int64 / 'f' float64 / 's' str),
and the value list.  Real bytes, so exchange volumes in the simulation are
the true serialized sizes.
"""

from __future__ import annotations

import numpy as np

from repro.thrift import TBinaryProtocol, TMemoryBuffer, TType
from repro.tpch.table import Table

__all__ = ["deserialize_table", "serialize_table"]


def serialize_table(t: Table) -> bytes:
    buf = TMemoryBuffer()
    prot = TBinaryProtocol(buf)
    prot.write_i32(len(t.names))
    prot.write_i32(len(t))
    for name in t.names:
        col = t[name]
        prot.write_string(name)
        if col.dtype.kind in "iu":
            prot.write_byte(ord("i"))
            for v in col.tolist():
                prot.write_i64(int(v))
        elif col.dtype.kind == "f":
            prot.write_byte(ord("f"))
            for v in col.tolist():
                prot.write_double(float(v))
        else:
            prot.write_byte(ord("s"))
            for v in col.tolist():
                prot.write_string(str(v))
    return buf.getvalue()


def deserialize_table(data: bytes) -> Table:
    prot = TBinaryProtocol(TMemoryBuffer(data))
    ncols = prot.read_i32()
    nrows = prot.read_i32()
    cols = {}
    for _ in range(ncols):
        name = prot.read_string()
        kind = chr(prot.read_byte())
        if kind == "i":
            cols[name] = np.asarray([prot.read_i64() for _ in range(nrows)],
                                    dtype=np.int64)
        elif kind == "f":
            cols[name] = np.asarray([prot.read_double()
                                     for _ in range(nrows)])
        else:
            cols[name] = np.asarray([prot.read_string()
                                     for _ in range(nrows)], dtype=object)
    if not cols:
        return Table({})
    return Table(cols)
