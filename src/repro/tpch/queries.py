"""The 22 TPC-H queries over the columnar mini-engine.

Each query is a function ``qN(db) -> Table`` following the official query
definitions with the spec's validation parameter values.  LIKE patterns are
realized with substring/prefix tests, dates with the integer-day encoding
of :mod:`repro.tpch.schema`.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.tpch.schema import date_to_int as d
from repro.tpch.table import Table

__all__ = ["QUERIES", "run_query"]


def _rev(t: Table) -> np.ndarray:
    return t["l_extendedprice"] * (1 - t["l_discount"])


def _strcol(t: Table, name: str):
    return t[name]


def _contains(col, sub: str):
    return np.fromiter((sub in s for s in col), dtype=bool, count=len(col))


def _startswith(col, pre: str):
    return np.fromiter((s.startswith(pre) for s in col), dtype=bool,
                       count=len(col))


def _endswith(col, suf: str):
    return np.fromiter((s.endswith(suf) for s in col), dtype=bool,
                       count=len(col))


def _isin(col, values):
    vals = set(values)
    return np.fromiter((s in vals for s in col), dtype=bool, count=len(col))


def q1(db):
    """Pricing summary report."""
    li = db["lineitem"]
    t = li.filter(li["l_shipdate"] <= d("1998-12-01") - 90)
    t = t.with_column("disc_price", _rev(t))
    t = t.with_column("charge", _rev(t) * (1 + t["l_tax"]))
    out = t.group_by(["l_returnflag", "l_linestatus"], {
        "sum_qty": ("sum", "l_quantity"),
        "sum_base_price": ("sum", "l_extendedprice"),
        "sum_disc_price": ("sum", "disc_price"),
        "sum_charge": ("sum", "charge"),
        "avg_qty": ("mean", "l_quantity"),
        "avg_price": ("mean", "l_extendedprice"),
        "avg_disc": ("mean", "l_discount"),
        "count_order": ("count", "l_quantity"),
    })
    return out.sort([("l_returnflag", True), ("l_linestatus", True)])


def q2(db):
    """Minimum cost supplier (region EUROPE, size 15, type %BRASS)."""
    part = db["part"]
    p = part.filter((part["p_size"] == 15)
                    & _endswith(part["p_type"], "BRASS"))
    region = db["region"]
    r = region.filter(region["r_name"] == "EUROPE")
    n = db["nation"].join(r, "n_regionkey", "r_regionkey")
    s = db["supplier"].join(n, "s_nationkey", "n_nationkey")
    ps = db["partsupp"].join(p, "ps_partkey", "p_partkey") \
                       .join(s, "ps_suppkey", "s_suppkey")
    if len(ps) == 0:
        return ps.select(["ps_partkey"])
    mins = ps.group_by(["ps_partkey"],
                       {"min_cost": ("min", "ps_supplycost")})
    ps = ps.join(mins, "ps_partkey", "ps_partkey")
    ps = ps.filter(ps["ps_supplycost"] == ps["min_cost"])
    out = ps.select(["s_acctbal", "s_name", "n_name", "ps_partkey",
                     "p_mfgr", "s_address", "s_phone", "s_comment"])
    return out.sort([("s_acctbal", False), ("n_name", True),
                     ("s_name", True), ("ps_partkey", True)]).head(100)


def q3(db):
    """Shipping priority: top 10 unshipped BUILDING orders."""
    cutoff = d("1995-03-15")
    c = db["customer"]
    c = c.filter(c["c_mktsegment"] == "BUILDING")
    o = db["orders"]
    o = o.filter(o["o_orderdate"] < cutoff).join(c, "o_custkey", "c_custkey")
    li = db["lineitem"]
    li = li.filter(li["l_shipdate"] > cutoff)
    t = li.join(o, "l_orderkey", "o_orderkey")
    t = t.with_column("rev", _rev(t))
    out = t.group_by(["l_orderkey", "o_orderdate", "o_shippriority"],
                     {"revenue": ("sum", "rev")})
    return out.sort([("revenue", False), ("o_orderdate", True),
                     ("l_orderkey", True)]).head(10)


def q4(db):
    """Order priority checking."""
    lo, hi = d("1993-07-01"), d("1993-10-01")
    o = db["orders"]
    o = o.filter((o["o_orderdate"] >= lo) & (o["o_orderdate"] < hi))
    li = db["lineitem"]
    late = li.filter(li["l_commitdate"] < li["l_receiptdate"])
    o = o.semi_join(late, "o_orderkey", "l_orderkey")
    out = o.group_by(["o_orderpriority"],
                     {"order_count": ("count", "o_orderkey")})
    return out.sort([("o_orderpriority", True)])


def q5(db):
    """Local supplier volume (ASIA, 1994)."""
    r = db["region"]
    r = r.filter(r["r_name"] == "ASIA")
    n = db["nation"].join(r, "n_regionkey", "r_regionkey")
    o = db["orders"]
    o = o.filter((o["o_orderdate"] >= d("1994-01-01"))
                 & (o["o_orderdate"] < d("1995-01-01")))
    c = db["customer"].join(n, "c_nationkey", "n_nationkey")
    o = o.join(c, "o_custkey", "c_custkey")
    li = db["lineitem"].join(o, "l_orderkey", "o_orderkey")
    s = db["supplier"]
    li = li.join(s, "l_suppkey", "s_suppkey")
    # local supplier: supplier and customer share the nation
    li = li.filter(li["s_nationkey"] == li["c_nationkey"])
    li = li.with_column("rev", _rev(li))
    out = li.group_by(["n_name"], {"revenue": ("sum", "rev")})
    return out.sort([("revenue", False)])


def q6(db):
    """Forecasting revenue change."""
    li = db["lineitem"]
    m = ((li["l_shipdate"] >= d("1994-01-01"))
         & (li["l_shipdate"] < d("1995-01-01"))
         & (li["l_discount"] >= 0.05) & (li["l_discount"] <= 0.07)
         & (li["l_quantity"] < 24))
    t = li.filter(m)
    return Table({"revenue": np.asarray(
        [(t["l_extendedprice"] * t["l_discount"]).sum()])})


def q7(db):
    """Volume shipping between FRANCE and GERMANY."""
    n = db["nation"]
    s = db["supplier"].join(n, "s_nationkey", "n_nationkey")
    s = s.with_column("supp_nation", s["n_name"])
    c = db["customer"].join(n, "c_nationkey", "n_nationkey")
    c = c.with_column("cust_nation", c["n_name"])
    li = db["lineitem"]
    li = li.filter((li["l_shipdate"] >= d("1995-01-01"))
                   & (li["l_shipdate"] <= d("1996-12-31")))
    t = li.join(db["orders"], "l_orderkey", "o_orderkey")
    t = t.join(s.select(["s_suppkey", "supp_nation"]),
               "l_suppkey", "s_suppkey")
    t = t.join(c.select(["c_custkey", "cust_nation"]),
               "o_custkey", "c_custkey")
    pair = (((t["supp_nation"] == "FRANCE") & (t["cust_nation"] == "GERMANY"))
            | ((t["supp_nation"] == "GERMANY")
               & (t["cust_nation"] == "FRANCE")))
    t = t.filter(pair)
    t = t.with_column("l_year", (t["l_shipdate"] // 365.25).astype(np.int64)
                      + 1992)
    t = t.with_column("volume", _rev(t))
    out = t.group_by(["supp_nation", "cust_nation", "l_year"],
                     {"revenue": ("sum", "volume")})
    return out.sort([("supp_nation", True), ("cust_nation", True),
                     ("l_year", True)])


def q8(db):
    """National market share (BRAZIL in AMERICA, ECONOMY ANODIZED STEEL)."""
    p = db["part"]
    p = p.filter(p["p_type"] == "ECONOMY ANODIZED STEEL")
    r = db["region"]
    r = r.filter(r["r_name"] == "AMERICA")
    n_cust = db["nation"].join(r, "n_regionkey", "r_regionkey")
    o = db["orders"]
    o = o.filter((o["o_orderdate"] >= d("1995-01-01"))
                 & (o["o_orderdate"] <= d("1996-12-31")))
    c = db["customer"].join(n_cust, "c_nationkey", "n_nationkey")
    o = o.join(c, "o_custkey", "c_custkey")
    li = db["lineitem"].join(p, "l_partkey", "p_partkey")
    t = li.join(o, "l_orderkey", "o_orderkey")
    n_all = db["nation"]
    s = db["supplier"].join(n_all, "s_nationkey", "n_nationkey")
    s.cols["supp_nation"] = s["n_name"]
    t = t.join(s.select(["s_suppkey", "supp_nation"]),
               "l_suppkey", "s_suppkey")
    t = t.with_column("o_year",
                      (t["o_orderdate"] // 365.25).astype(np.int64) + 1992)
    t = t.with_column("volume", _rev(t))
    t = t.with_column("brazil_volume",
                      np.where(t["supp_nation"] == "BRAZIL",
                               t["volume"], 0.0))
    out = t.group_by(["o_year"], {"total": ("sum", "volume"),
                                  "brazil": ("sum", "brazil_volume")})
    share = np.divide(out["brazil"], out["total"],
                      out=np.zeros(len(out)), where=out["total"] != 0)
    return out.with_column("mkt_share", share).sort([("o_year", True)])


def q9(db):
    """Product type profit measure (parts like %green%)."""
    p = db["part"]
    p = p.filter(_contains(p["p_name"], "green"))
    li = db["lineitem"].join(p, "l_partkey", "p_partkey")
    ps = db["partsupp"]
    # composite (partkey, suppkey) join realized via a keyed dict
    key = {(pk, sk): cost for pk, sk, cost in
           zip(ps["ps_partkey"].tolist(), ps["ps_suppkey"].tolist(),
               ps["ps_supplycost"].tolist())}
    costs = np.asarray([key.get((pk, sk), 0.0) for pk, sk in
                        zip(li["l_partkey"].tolist(),
                            li["l_suppkey"].tolist())])
    li = li.with_column("ps_supplycost", costs)
    n = db["nation"]
    s = db["supplier"].join(n, "s_nationkey", "n_nationkey")
    li = li.join(s.select(["s_suppkey", "n_name"]), "l_suppkey", "s_suppkey")
    li = li.join(db["orders"].select(["o_orderkey", "o_orderdate"]),
                 "l_orderkey", "o_orderkey")
    li = li.with_column("o_year",
                        (li["o_orderdate"] // 365.25).astype(np.int64) + 1992)
    li = li.with_column("amount",
                        _rev(li) - li["ps_supplycost"] * li["l_quantity"])
    out = li.group_by(["n_name", "o_year"], {"sum_profit": ("sum", "amount")})
    return out.sort([("n_name", True), ("o_year", False)])


def q10(db):
    """Returned item reporting: top 20 customers by lost revenue."""
    lo, hi = d("1993-10-01"), d("1994-01-01")
    o = db["orders"]
    o = o.filter((o["o_orderdate"] >= lo) & (o["o_orderdate"] < hi))
    li = db["lineitem"]
    li = li.filter(li["l_returnflag"] == "R")
    t = li.join(o, "l_orderkey", "o_orderkey")
    t = t.join(db["customer"], "o_custkey", "c_custkey")
    t = t.join(db["nation"].select(["n_nationkey", "n_name"]),
               "c_nationkey", "n_nationkey")
    t = t.with_column("rev", _rev(t))
    out = t.group_by(["c_custkey", "c_name", "c_acctbal", "c_phone",
                      "n_name", "c_address", "c_comment"],
                     {"revenue": ("sum", "rev")})
    return out.sort([("revenue", False), ("c_custkey", True)]).head(20)


def q11(db):
    """Important stock identification (GERMANY)."""
    n = db["nation"]
    n = n.filter(n["n_name"] == "GERMANY")
    s = db["supplier"].join(n, "s_nationkey", "n_nationkey")
    ps = db["partsupp"].join(s, "ps_suppkey", "s_suppkey")
    ps = ps.with_column("value", ps["ps_supplycost"] * ps["ps_availqty"])
    total = ps["value"].sum()
    out = ps.group_by(["ps_partkey"], {"value": ("sum", "value")})
    out = out.filter(out["value"] > total * 0.0001)
    return out.sort([("value", False), ("ps_partkey", True)])


def q12(db):
    """Shipping modes and order priority (MAIL, SHIP; 1994)."""
    li = db["lineitem"]
    m = (_isin(li["l_shipmode"], ["MAIL", "SHIP"])
         & (li["l_commitdate"] < li["l_receiptdate"])
         & (li["l_shipdate"] < li["l_commitdate"])
         & (li["l_receiptdate"] >= d("1994-01-01"))
         & (li["l_receiptdate"] < d("1995-01-01")))
    t = li.filter(m).join(db["orders"], "l_orderkey", "o_orderkey")
    high = _isin(t["o_orderpriority"], ["1-URGENT", "2-HIGH"])
    t = t.with_column("high", high.astype(np.int64))
    t = t.with_column("low", (~high).astype(np.int64))
    out = t.group_by(["l_shipmode"], {"high_line_count": ("sum", "high"),
                                      "low_line_count": ("sum", "low")})
    return out.sort([("l_shipmode", True)])


def q13(db):
    """Customer order-count distribution."""
    o = db["orders"]
    keep = ~(_contains(o["o_comment"], "special")
             & _contains(o["o_comment"], "requests"))
    o = o.filter(keep)
    per_cust = o.group_by(["o_custkey"], {"c_count": ("count", "o_orderkey")})
    counts: Dict[int, int] = {int(k): int(v) for k, v in
                              zip(per_cust["o_custkey"],
                                  per_cust["c_count"])}
    c = db["customer"]
    dist: Dict[int, int] = {}
    for ck in c["c_custkey"].tolist():
        dist[counts.get(ck, 0)] = dist.get(counts.get(ck, 0), 0) + 1
    out = Table.from_rows(["c_count", "custdist"], sorted(dist.items()))
    return out.sort([("custdist", False), ("c_count", False)])


def q14(db):
    """Promotion effect (1995-09)."""
    li = db["lineitem"]
    li = li.filter((li["l_shipdate"] >= d("1995-09-01"))
                   & (li["l_shipdate"] < d("1995-10-01")))
    t = li.join(db["part"].select(["p_partkey", "p_type"]),
                "l_partkey", "p_partkey")
    rev = _rev(t)
    promo = rev[np.asarray(_startswith(t["p_type"], "PROMO"))].sum()
    total = rev.sum()
    pct = 100.0 * promo / total if total else 0.0
    return Table({"promo_revenue": np.asarray([pct])})


def q15(db):
    """Top supplier by quarterly revenue (1996-Q1)."""
    li = db["lineitem"]
    li = li.filter((li["l_shipdate"] >= d("1996-01-01"))
                   & (li["l_shipdate"] < d("1996-04-01")))
    li = li.with_column("rev", _rev(li))
    per_supp = li.group_by(["l_suppkey"], {"total_revenue": ("sum", "rev")})
    if len(per_supp) == 0:
        return per_supp
    best = per_supp["total_revenue"].max()
    top = per_supp.filter(per_supp["total_revenue"] == best)
    out = top.join(db["supplier"], "l_suppkey", "s_suppkey")
    return out.select(["l_suppkey", "s_name", "s_address", "s_phone",
                       "total_revenue"]).sort([("l_suppkey", True)])


def q16(db):
    """Parts/supplier relationship (excluding complained-about suppliers)."""
    p = db["part"]
    m = ((p["p_brand"] != "Brand#45")
         & ~_startswith(p["p_type"], "MEDIUM POLISHED")
         & _isin(p["p_size"].tolist(), [49, 14, 23, 45, 19, 3, 36, 9]))
    p = p.filter(m)
    s = db["supplier"]
    bad = s.filter(_contains(s["s_comment"], "Customer Complaints"))
    ps = db["partsupp"].semi_join(bad, "ps_suppkey", "s_suppkey", anti=True)
    t = ps.join(p, "ps_partkey", "p_partkey")
    seen = {}
    for b, ty, sz, sk in zip(t["p_brand"], t["p_type"], t["p_size"],
                             t["ps_suppkey"]):
        seen.setdefault((b, ty, int(sz)), set()).add(int(sk))
    rows = [(b, ty, sz, len(v)) for (b, ty, sz), v in seen.items()]
    out = Table.from_rows(["p_brand", "p_type", "p_size", "supplier_cnt"],
                          rows)
    return out.sort([("supplier_cnt", False), ("p_brand", True),
                     ("p_type", True), ("p_size", True)])


def q17(db):
    """Small-quantity-order revenue (Brand#23, MED BOX)."""
    p = db["part"]
    p = p.filter((p["p_brand"] == "Brand#23")
                 & (p["p_container"] == "MED BOX"))
    li = db["lineitem"].join(p.select(["p_partkey"]),
                             "l_partkey", "p_partkey")
    if len(li) == 0:
        return Table({"avg_yearly": np.asarray([0.0])})
    avg = li.group_by(["l_partkey"], {"avg_qty": ("mean", "l_quantity")})
    li = li.join(avg, "l_partkey", "l_partkey")
    small = li.filter(li["l_quantity"] < 0.2 * li["avg_qty"])
    return Table({"avg_yearly": np.asarray(
        [small["l_extendedprice"].sum() / 7.0])})


def q18(db):
    """Large volume customers (sum(l_quantity) > 300)."""
    li = db["lineitem"]
    per_order = li.group_by(["l_orderkey"], {"sum_qty": ("sum", "l_quantity")})
    big = per_order.filter(per_order["sum_qty"] > 300)
    o = db["orders"].join(big, "o_orderkey", "l_orderkey")
    t = o.join(db["customer"].select(["c_custkey", "c_name"]),
               "o_custkey", "c_custkey")
    out = t.select(["c_name", "c_custkey", "o_orderkey", "o_orderdate",
                    "o_totalprice", "sum_qty"])
    return out.sort([("o_totalprice", False),
                     ("o_orderdate", True)]).head(100)


def q19(db):
    """Discounted revenue: three brand/container/quantity branches."""
    li = db["lineitem"]
    li = li.filter(_isin(li["l_shipmode"], ["AIR", "REG AIR"])
                   & (li["l_shipinstruct"] == "DELIVER IN PERSON"))
    t = li.join(db["part"], "l_partkey", "p_partkey")
    sm = {"SM CASE", "SM BOX", "SM PACK", "SM PKG"}
    med = {"MED BAG", "MED BOX", "MED PKG", "MED PACK"}
    lg = {"LG CASE", "LG BOX", "LG PACK", "LG PKG"}
    b1 = ((t["p_brand"] == "Brand#12") & _isin(t["p_container"], sm)
          & (t["l_quantity"] >= 1) & (t["l_quantity"] <= 11)
          & (t["p_size"] >= 1) & (t["p_size"] <= 5))
    b2 = ((t["p_brand"] == "Brand#23") & _isin(t["p_container"], med)
          & (t["l_quantity"] >= 10) & (t["l_quantity"] <= 20)
          & (t["p_size"] >= 1) & (t["p_size"] <= 10))
    b3 = ((t["p_brand"] == "Brand#34") & _isin(t["p_container"], lg)
          & (t["l_quantity"] >= 20) & (t["l_quantity"] <= 30)
          & (t["p_size"] >= 1) & (t["p_size"] <= 15))
    t = t.filter(b1 | b2 | b3)
    return Table({"revenue": np.asarray([_rev(t).sum()])})


def q20(db):
    """Potential part promotion (forest%, CANADA, 1994)."""
    p = db["part"]
    p = p.filter(_startswith(p["p_name"], "forest"))
    li = db["lineitem"]
    li = li.filter((li["l_shipdate"] >= d("1994-01-01"))
                   & (li["l_shipdate"] < d("1995-01-01")))
    shipped: Dict[tuple, float] = {}
    for pk, sk, q in zip(li["l_partkey"].tolist(), li["l_suppkey"].tolist(),
                         li["l_quantity"].tolist()):
        shipped[(pk, sk)] = shipped.get((pk, sk), 0.0) + q
    ps = db["partsupp"].semi_join(p, "ps_partkey", "p_partkey")
    keep = np.fromiter(
        (avail > 0.5 * shipped.get((pk, sk), 0.0) and (pk, sk) in shipped
         for pk, sk, avail in zip(ps["ps_partkey"].tolist(),
                                  ps["ps_suppkey"].tolist(),
                                  ps["ps_availqty"].tolist())),
        dtype=bool, count=len(ps))
    ps = ps.filter(keep)
    n = db["nation"]
    n = n.filter(n["n_name"] == "CANADA")
    s = db["supplier"].join(n, "s_nationkey", "n_nationkey")
    s = s.semi_join(ps, "s_suppkey", "ps_suppkey")
    return s.select(["s_name", "s_address"]).sort([("s_name", True)])


def _q21_counts(db):
    """Q21 core: per-supplier wait counts over the given (partial) data."""
    n = db["nation"]
    n = n.filter(n["n_name"] == "SAUDI ARABIA")
    s = db["supplier"].join(n, "s_nationkey", "n_nationkey")
    o = db["orders"]
    o = o.filter(o["o_orderstatus"] == "F")
    li = db["lineitem"].join(o.select(["o_orderkey"]),
                             "l_orderkey", "o_orderkey")
    late = (li["l_receiptdate"] > li["l_commitdate"]).astype(np.int64)
    li = li.with_column("late", late)
    # per (order, supplier): any late line; per order: distinct suppliers
    per = {}
    for ok, sk, lt in zip(li["l_orderkey"].tolist(),
                          li["l_suppkey"].tolist(), li["late"].tolist()):
        entry = per.setdefault(ok, {})
        entry[sk] = max(entry.get(sk, 0), lt)
    counts: Dict[int, int] = {}
    saudi = set(s["s_suppkey"].tolist())
    for ok, entry in per.items():
        if len(entry) < 2:
            continue  # multi-supplier orders only
        late_suppliers = [sk for sk, lt in entry.items() if lt]
        if len(late_suppliers) == 1 and late_suppliers[0] in saudi:
            sk = late_suppliers[0]
            counts[sk] = counts.get(sk, 0) + 1
    name = {int(k): v for k, v in zip(db["supplier"]["s_suppkey"],
                                      db["supplier"]["s_name"])}
    rows = [(name[sk], cnt) for sk, cnt in counts.items()]
    return Table.from_rows(["s_name", "numwait"], rows)


def q21(db):
    """Suppliers who kept orders waiting (SAUDI ARABIA)."""
    out = _q21_counts(db)
    return out.sort([("numwait", False), ("s_name", True)]).head(100)


def q22(db):
    """Global sales opportunity (country codes, positive balances)."""
    codes = {"13", "31", "23", "29", "30", "18", "17"}
    c = db["customer"]
    cc = np.asarray([phone[:2] for phone in c["c_phone"]], dtype=object)
    c = c.with_column("cntrycode", cc)
    c = c.filter(_isin(c["cntrycode"], codes))
    if len(c) == 0:
        return Table.from_rows(["cntrycode", "numcust", "totacctbal"], [])
    positive = c.filter(c["c_acctbal"] > 0.0)
    avg_bal = positive["c_acctbal"].mean() if len(positive) else 0.0
    c = c.filter(c["c_acctbal"] > avg_bal)
    c = c.semi_join(db["orders"], "c_custkey", "o_custkey", anti=True)
    out = c.group_by(["cntrycode"], {"numcust": ("count", "c_custkey"),
                                     "totacctbal": ("sum", "c_acctbal")})
    return out.sort([("cntrycode", True)])


QUERIES: Dict[int, Callable] = {
    1: q1, 2: q2, 3: q3, 4: q4, 5: q5, 6: q6, 7: q7, 8: q8, 9: q9,
    10: q10, 11: q11, 12: q12, 13: q13, 14: q14, 15: q15, 16: q16,
    17: q17, 18: q18, 19: q19, 20: q20, 21: q21, 22: q22,
}


def run_query(db, number: int) -> Table:
    try:
        fn = QUERIES[number]
    except KeyError:
        raise KeyError(f"TPC-H defines queries 1..22, not {number}") from None
    return fn(db)
