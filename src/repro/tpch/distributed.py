"""The distributed TPC-H executor over the RPC layer under test.

Topology (Section 5.5): node 0 is the coordinator, nodes 1..W are workers
holding orderkey-striped partitions of orders+lineitem plus replicated
dimensions.  A query runs as:

1. the coordinator calls ``RunFragment(q)`` on every worker in parallel;
2. each worker charges fragment compute (rows scanned x per-row cost),
   runs the fragment plan, and returns the first chunk of the serialized
   partial, streaming the rest through ``PullChunk`` calls (the framed
   chunking a Thrift-based engine uses for large intermediates);
3. the coordinator deserializes, concatenates, charges the final-stage
   compute, and produces the query result.

Only the RPC transport differs between the three modes the paper compares:
``ipoib`` (vanilla Thrift over kernel TCP), ``hatrpc_service``
(service-level hints), ``hatrpc_function`` (per-function hints: bulk
fragment pulls vs. latency-sensitive control RPCs + NUMA binding).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.engine import pinned_plan
from repro.core.runtime import HatRpcServer, hatrpc_connect
from repro.idl import load_idl
from repro.sim.units import KiB, ns
from repro.verbs.cq import PollMode
from repro.testbed import Testbed
from repro.tpch.datagen import generate
from repro.tpch.fragments import PLANS
from repro.tpch.ser import deserialize_table, serialize_table
from repro.tpch.table import Table

__all__ = ["DistributedTpch", "TpchResult"]

SERVICE = "TpchWorker"
BASE_SID = 8000
CHUNK = 64 * KiB

_MODES = ("ipoib", "hatrpc_service", "hatrpc_function")
_IDL_COUNTER = [0]


def _worker_idl(mode: str, n_workers: int) -> str:
    if mode == "hatrpc_function":
        frag_hints = ("[ hint: perf_goal = throughput, payload_size = 64KB, "
                      "numa_binding = true; ]")
        pull_hints = frag_hints
        ctl_hints = "[ hint: perf_goal = latency, payload_size = 64; ]"
        ping_hints = "[ hint: transport = tcp; ]"
    else:
        frag_hints = pull_hints = ctl_hints = ping_hints = ""
    return f"""
service TpchWorker {{
    hint: perf_goal = throughput, concurrency = {n_workers};

    binary RunFragment(1: i32 query) {frag_hints}
    binary PullChunk(1: i32 query, 2: i32 offset) {pull_hints}
    i32 Prepare(1: i32 query) {ctl_hints}
    i32 Ping() {ping_hints}
}}
"""


class _WorkerHandler:
    """One worker's service implementation over its partition."""

    def __init__(self, node, partition_db: Dict[str, Table],
                 per_row_cost: float):
        self.node = node
        self.db = partition_db
        self.per_row_cost = per_row_cost
        self._staged: Dict[int, bytes] = {}

    def Prepare(self, query):
        # Plan/metadata setup: a small fixed cost.
        yield self.node.compute(2e-6)
        return query

    def Ping(self):
        return 1

    def RunFragment(self, query):
        plan = PLANS[int(query)]
        rows = sum(len(self.db[t]) for t in plan.touches)
        yield self.node.compute(rows * self.per_row_cost)
        partial = plan.fragment(self.db)
        data = serialize_table(partial)
        self._staged[int(query)] = data
        # First chunk rides the reply: u32 total length + payload.
        return struct.pack("<I", len(data)) + data[:CHUNK]

    def PullChunk(self, query, offset):
        data = self._staged.get(int(query), b"")
        chunk = data[int(offset):int(offset) + CHUNK]
        yield self.node.compute(len(chunk) * 0.02 * ns)  # stream-out cost
        return chunk


@dataclass
class TpchResult:
    query: int
    elapsed: float              # simulated seconds
    result: Table
    exchange_bytes: int


class DistributedTpch:
    """One experiment instance: a cluster, a dataset, and an RPC mode."""

    def __init__(self, mode: str = "hatrpc_function", sf: float = 0.005,
                 n_workers: int = 9, per_row_cost: float = 50 * ns,
                 seed: int = 0, testbed: Optional[Testbed] = None):
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        self.mode = mode
        self.sf = sf
        self.n_workers = n_workers
        self.per_row_cost = per_row_cost
        self.tb = testbed or Testbed(n_nodes=n_workers + 1)
        if len(self.tb.nodes) < n_workers + 1:
            raise ValueError("testbed too small for the worker count")
        self.db = generate(sf=sf, seed=seed)
        _IDL_COUNTER[0] += 1
        self.gen = load_idl(_worker_idl(mode, n_workers),
                            f"tpch_gen_{mode}_{_IDL_COUNTER[0]}")
        self._partitions = self._partition()
        self._stubs: List = []
        self._started = False

    # -- data layout -----------------------------------------------------------
    def _partition(self) -> List[Dict[str, Table]]:
        import numpy as np
        W = self.n_workers
        parts = []
        o = self.db["orders"]
        li = self.db["lineitem"]
        o_stripe = o["o_orderkey"] % W
        l_stripe = li["l_orderkey"] % W
        dims = {t: self.db[t] for t in
                ("region", "nation", "supplier", "customer", "part",
                 "partsupp")}
        for w in range(W):
            part = dict(dims)
            part["orders"] = o.filter(o_stripe == w)
            part["lineitem"] = li.filter(l_stripe == w)
            parts.append(part)
        return parts

    def _plan(self):
        if self.mode == "ipoib":
            return pinned_plan(SERVICE, self.gen.SERVICE_FUNCTIONS[SERVICE],
                               "tcp", PollMode.EVENT, 128 * KiB)
        return None  # hint-driven

    # -- cluster bring-up -----------------------------------------------------------
    def start(self) -> "DistributedTpch":
        """Coroutine-free setup + simulated connection establishment."""
        sim = self.tb.sim
        for w in range(self.n_workers):
            node = self.tb.node(w + 1)
            handler = _WorkerHandler(node, self._partitions[w],
                                     self.per_row_cost)
            HatRpcServer(node, self.gen, SERVICE, handler,
                         base_service_id=BASE_SID,
                         concurrency=self.n_workers,
                         plan=self._plan()).start()

        def connect_all():
            for w in range(self.n_workers):
                stub = yield from hatrpc_connect(
                    self.tb.node(0), self.tb.node(w + 1), self.gen, SERVICE,
                    base_service_id=BASE_SID, concurrency=self.n_workers,
                    plan=self._plan())
                # Warm the lazily established channels so per-query timings
                # measure steady state, not connection setup.
                yield from stub.Prepare(0)
                yield from stub.PullChunk(0, 0)
                self._stubs.append(stub)

        sim.run(sim.process(connect_all()))
        self._started = True
        return self

    # -- execution ----------------------------------------------------------------------
    def run_query(self, query: int) -> TpchResult:
        if not self._started:
            raise RuntimeError("call start() first")
        if query not in PLANS:
            raise KeyError(f"TPC-H defines queries 1..22, not {query}")
        sim = self.tb.sim
        plan = PLANS[query]
        partials: List[Table] = [None] * self.n_workers
        volume = {"bytes": 0}

        def fetch(w):
            stub = self._stubs[w]
            yield from stub.Prepare(query)
            first = yield from stub.RunFragment(query)
            (total,) = struct.unpack_from("<I", first)
            data = first[4:]
            volume["bytes"] += len(first)
            while len(data) < total:
                chunk = yield from stub.PullChunk(query, len(data))
                data += chunk
                volume["bytes"] += len(chunk)
            partials[w] = deserialize_table(data)

        t0 = sim.now
        procs = [sim.process(fetch(w)) for w in range(self.n_workers)]
        sim.run()
        for p in procs:
            p.value  # surface worker/coordinator failures
        merged = _concat(partials)
        done = sim.event()

        def final_stage():
            rows = len(merged) + sum(len(self.db[t])
                                     for t in plan.final_touches)
            yield self.tb.node(0).compute(rows * self.per_row_cost + 5e-6)
            done.succeed()

        sim.process(final_stage())
        sim.run()
        result = plan.final(merged, self.db)
        return TpchResult(query=query, elapsed=sim.now - t0, result=result,
                          exchange_bytes=volume["bytes"])

    def run_all(self) -> Dict[int, TpchResult]:
        return {q: self.run_query(q) for q in sorted(PLANS)}


def _concat(tables: List[Table]) -> Table:
    tables = [t for t in tables if t is not None and len(t.names) > 0]
    non_empty = [t for t in tables if len(t) > 0]
    if not non_empty:
        return tables[0] if tables else Table({})
    out = non_empty[0]
    for t in non_empty[1:]:
        out = out.concat(t)
    return out
