"""A tiny columnar table with the operators the 22 queries need."""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Table"]


class Table:
    """Columns are equal-length numpy arrays keyed by name."""

    def __init__(self, columns: Dict[str, np.ndarray]):
        lengths = {len(v) for v in columns.values()}
        if len(lengths) > 1:
            raise ValueError(f"ragged columns: { {k: len(v) for k, v in columns.items()} }")
        self.cols = dict(columns)
        self.n = lengths.pop() if lengths else 0

    def __len__(self) -> int:
        return self.n

    def __getitem__(self, name: str) -> np.ndarray:
        return self.cols[name]

    def __contains__(self, name: str) -> bool:
        return name in self.cols

    @property
    def names(self) -> List[str]:
        return list(self.cols)

    # -- relational operators ----------------------------------------------
    def filter(self, mask: np.ndarray) -> "Table":
        return Table({k: v[mask] for k, v in self.cols.items()})

    def select(self, names: Sequence[str]) -> "Table":
        return Table({k: self.cols[k] for k in names})

    def with_column(self, name: str, values: np.ndarray) -> "Table":
        out = dict(self.cols)
        out[name] = values
        return Table(out)

    def take(self, idx: np.ndarray) -> "Table":
        return Table({k: v[idx] for k, v in self.cols.items()})

    def head(self, n: int) -> "Table":
        return Table({k: v[:n] for k, v in self.cols.items()})

    def concat(self, other: "Table") -> "Table":
        if set(self.cols) != set(other.cols):
            raise ValueError("schema mismatch in concat")
        return Table({k: np.concatenate([self.cols[k], other.cols[k]])
                      for k in self.cols})

    def join(self, other: "Table", left_on: str, right_on: str) -> "Table":
        """Inner hash join; right side is the build side.

        Column name collisions keep the left value (TPC-H queries always
        join on distinct key names, so nothing is lost in practice).
        """
        build: Dict[int, List[int]] = {}
        rkeys = other.cols[right_on]
        for i, k in enumerate(rkeys.tolist()):
            build.setdefault(k, []).append(i)
        lidx: List[int] = []
        ridx: List[int] = []
        for i, k in enumerate(self.cols[left_on].tolist()):
            hits = build.get(k)
            if hits:
                for j in hits:
                    lidx.append(i)
                    ridx.append(j)
        li = np.asarray(lidx, dtype=np.int64)
        ri = np.asarray(ridx, dtype=np.int64)
        out = {k: v[li] for k, v in self.cols.items()}
        for k, v in other.cols.items():
            if k not in out:
                out[k] = v[ri]
        return Table(out)

    def semi_join(self, other: "Table", left_on: str,
                  right_on: str, anti: bool = False) -> "Table":
        keys = set(other.cols[right_on].tolist())
        mask = np.fromiter(((k in keys) != anti
                            for k in self.cols[left_on].tolist()),
                           dtype=bool, count=self.n)
        return self.filter(mask)

    def group_by(self, keys: Sequence[str],
                 aggs: Dict[str, Tuple[str, str]]) -> "Table":
        """Group by ``keys``; ``aggs`` maps output name -> (op, column).

        ops: sum, mean, count, min, max.  'count' ignores its column.
        """
        if self.n == 0:
            out = {k: self.cols[k][:0] for k in keys}
            for name, (op, col) in aggs.items():
                out[name] = np.zeros(0)
            return Table(out)
        groups: Dict[tuple, List[int]] = {}
        key_cols = [self.cols[k] for k in keys]
        for i in range(self.n):
            gk = tuple(c[i] for c in key_cols)
            groups.setdefault(gk, []).append(i)
        ordered = list(groups.items())
        out: Dict[str, np.ndarray] = {}
        for ki, k in enumerate(keys):
            out[k] = np.asarray([gk[ki] for gk, _ in ordered])
        for name, (op, col) in aggs.items():
            vals = []
            for _gk, idx in ordered:
                if op == "count":
                    vals.append(len(idx))
                    continue
                data = self.cols[col][idx]
                if op == "sum":
                    vals.append(data.sum())
                elif op == "mean":
                    vals.append(data.mean())
                elif op == "min":
                    vals.append(data.min())
                elif op == "max":
                    vals.append(data.max())
                else:
                    raise ValueError(f"unknown aggregate {op!r}")
            out[name] = np.asarray(vals)
        return Table(out)

    def sort(self, by: Sequence[Tuple[str, bool]]) -> "Table":
        """Sort by [(column, ascending), ...] with stable multi-key order."""
        idx = np.arange(self.n)
        for col, asc in reversed(by):
            vals = self.cols[col][idx]
            if asc:
                order = np.argsort(vals, kind="stable")
            elif vals.dtype.kind in "if":
                order = np.argsort(-vals, kind="stable")  # stable descending
            else:
                order = np.argsort(vals, kind="stable")[::-1]
            idx = idx[order]
        return self.take(idx)

    # -- plumbing ---------------------------------------------------------------
    def rows(self) -> List[tuple]:
        names = self.names
        return [tuple(self.cols[k][i] for k in names) for i in range(self.n)]

    def to_dicts(self) -> List[dict]:
        names = self.names
        return [{k: self.cols[k][i] for k in names} for i in range(self.n)]

    @staticmethod
    def from_rows(names: Sequence[str], rows: Iterable[tuple]) -> "Table":
        rows = list(rows)
        cols = {}
        for i, name in enumerate(names):
            cols[name] = np.asarray([r[i] for r in rows])
        if not rows:
            cols = {name: np.zeros(0) for name in names}
        return Table(cols)
