"""One-call construction of the simulated testbed.

``Testbed()`` builds the paper's Section 5.1 environment: a cluster of
28-core nodes joined by a 100 Gbps fabric, with an RDMA device and a kernel
TCP (IPoIB) stack on every node.  All examples, tests, and benchmarks start
here.
"""

from __future__ import annotations

from typing import Optional

from repro.netfab.fabric import Fabric, FabricParams
from repro.netfab.tcp import TcpParams, TcpStack
from repro.sim.cluster import Cluster, ClusterSpec, Node, NodeSpec
from repro.sim.core import Simulator
from repro.verbs.costmodel import CostModel
from repro.verbs.device import Device

__all__ = ["Testbed"]


class Testbed:
    """A ready-to-use simulated cluster."""

    __test__ = False  # not a pytest test class despite the name

    def __init__(self,
                 n_nodes: int = 10,
                 node_spec: Optional[NodeSpec] = None,
                 fabric_params: Optional[FabricParams] = None,
                 cost_model: Optional[CostModel] = None,
                 tcp_params: Optional[TcpParams] = None):
        self.sim = Simulator()
        spec = ClusterSpec(n_nodes=n_nodes, node=node_spec or NodeSpec())
        self.cluster = Cluster(self.sim, spec)
        self.fabric = Fabric(self.sim, self.cluster, fabric_params)
        self.cost_model = cost_model or CostModel()
        self.tcp_params = tcp_params or TcpParams()
        for node in self.cluster:
            Device(self.sim, node, self.fabric, self.cost_model)
            TcpStack(self.sim, node, self.fabric, self.tcp_params)

    @property
    def nodes(self) -> list[Node]:
        return self.cluster.nodes

    def node(self, i: int) -> Node:
        return self.cluster.nodes[i]

    def split(self, n_servers: int,
              n_clients: Optional[int] = None) -> tuple:
        """(server_nodes, client_nodes): the first ``n_servers`` nodes for
        servers, the rest (or the next ``n_clients``) for clients -- the
        multi-server topology a sharded cluster runs on."""
        if n_servers >= len(self.nodes):
            raise ValueError(f"{n_servers} server nodes leaves no client "
                             f"nodes on a {len(self.nodes)}-node testbed")
        servers = self.nodes[:n_servers]
        clients = self.nodes[n_servers:]
        if n_clients is not None:
            if n_clients > len(clients):
                raise ValueError(f"asked for {n_clients} client nodes; only "
                                 f"{len(clients)} remain after {n_servers} "
                                 "servers")
            clients = clients[:n_clients]
        return servers, clients

    def run(self, until=None):
        return self.sim.run(until)
