"""Observability: metrics registry + Chrome-trace timeline export.

Two halves:

* :mod:`repro.obs.metrics` -- a cheap :class:`MetricsRegistry` (counters,
  gauges, log-bucketed histograms, pull probes) that every runtime layer
  reports into **when one is installed**;
* :mod:`repro.obs.timeline` -- exports ``CallSpan``s and fault-trace
  events as Chrome ``trace_event`` JSON, viewable in Perfetto.

Install pattern (mirrors ``Tracer``'s "zero overhead when absent" rule)::

    from repro import obs

    reg = obs.install()           # BEFORE building the testbed/engine
    ...  run the workload ...
    print(obs.pretty(reg.snapshot()))
    obs.uninstall()

Components capture their instruments once, at construction, from
:func:`current`; with no registry installed the hot path pays exactly one
``is not None`` attribute check per instrumented site.  Installing a
registry *after* components are built therefore has no effect on them --
install first, or use the :func:`installed` context manager around the
whole scenario.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import Any, Dict, Optional

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.timeline import TimelineExporter, export_chrome_trace

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TimelineExporter",
    "current",
    "export_chrome_trace",
    "install",
    "installed",
    "pretty",
    "uninstall",
]

_current: Optional[MetricsRegistry] = None


def install(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Install (and return) the process-wide registry."""
    global _current
    _current = registry if registry is not None else MetricsRegistry()
    return _current


def uninstall() -> None:
    """Remove the installed registry (metrics go back to zero-cost off)."""
    global _current
    _current = None


def current() -> Optional[MetricsRegistry]:
    """The installed registry, or None.  Components call this ONCE at
    construction and cache the result -- never per call."""
    return _current


@contextmanager
def installed(registry: Optional[MetricsRegistry] = None):
    """``with obs.installed() as reg:`` -- scoped install/uninstall."""
    reg = install(registry)
    try:
        yield reg
    finally:
        uninstall()


def pretty(snapshot: Dict[str, Any]) -> str:
    """Human-readable rendering of a :meth:`MetricsRegistry.snapshot`."""
    return json.dumps(snapshot, indent=2, sort_keys=True, default=str)
