"""Observability: metrics registry + tracing + Chrome-trace timeline export.

Four pieces:

* :mod:`repro.obs.metrics` -- a cheap :class:`MetricsRegistry` (counters,
  gauges, log-bucketed histograms, pull probes) that every runtime layer
  reports into **when one is installed**;
* :mod:`repro.obs.trace` -- distributed tracing: W3C-traceparent-style
  context propagated across the wire, client/server stage spans, head
  sampling;
* :mod:`repro.obs.timeline` -- exports spans and fault-trace events as
  Chrome ``trace_event`` JSON, viewable in Perfetto;
* :mod:`repro.obs.promtext` / :mod:`repro.obs.attribution` -- Prometheus
  text exposition of a registry, and the per-hint-tuple stage-latency
  report.

Install pattern (mirrors ``Tracer``'s "zero overhead when absent" rule)::

    from repro import obs

    reg = obs.install()           # BEFORE building the testbed/engine
    ...  run the workload ...
    print(obs.pretty(reg.snapshot()))
    obs.uninstall()

THE INSTALL-ORDER RULE: components capture their instruments once, at
construction, from :func:`current`; with no registry installed the hot
path pays exactly one ``is not None`` attribute check per instrumented
site.  Installing a registry *after* components are built therefore has
no effect on them -- install first, or use the :func:`installed` context
manager around the whole scenario (the same rule applies to
``obs.trace.install``).  To catch this footgun, :func:`current` counts
how many lookups happened while no registry was installed, and
:func:`install` emits a one-time :class:`ObsInstallOrderWarning` when
that counter shows components were already built.
"""

from __future__ import annotations

import json
import warnings
from contextlib import contextmanager
from typing import Any, Dict, Optional

from repro.obs import trace
from repro.obs.attribution import attribution_table, hint_attribution
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.promtext import render as promtext_render
from repro.obs.slo import SloSpec, SloWatchdog
from repro.obs.timeline import TimelineExporter, export_chrome_trace
from repro.obs.timeseries import (JsonlSink, MetricsSampler, RingBuffer,
                                  read_stream, summarize_stream)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MetricsRegistry",
    "MetricsSampler",
    "ObsInstallOrderWarning",
    "RingBuffer",
    "SloSpec",
    "SloWatchdog",
    "TimelineExporter",
    "attribution_table",
    "current",
    "export_chrome_trace",
    "hint_attribution",
    "install",
    "installed",
    "pretty",
    "promtext_render",
    "read_stream",
    "summarize_stream",
    "trace",
    "uninstall",
]

_current: Optional[MetricsRegistry] = None

# Install-order footgun detection: every current() call that returns None
# is a component constructed *before* install() -- it will never report.
_missed_captures = 0
_warned_install_order = False


class ObsInstallOrderWarning(UserWarning):
    """A registry was installed after components had already captured
    ``None`` -- those components will not report into it."""


def install(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Install (and return) the process-wide registry."""
    global _current, _missed_captures, _warned_install_order
    if _missed_captures and not _warned_install_order:
        _warned_install_order = True
        warnings.warn(
            f"obs.install() called after {_missed_captures} component(s) "
            "already captured instruments while no registry was installed; "
            "those components will record nothing. Install the registry "
            "BEFORE building the testbed/engine (see the repro.obs "
            "docstring).",
            ObsInstallOrderWarning,
            stacklevel=2,
        )
    _missed_captures = 0
    _current = registry if registry is not None else MetricsRegistry()
    return _current


def uninstall() -> None:
    """Remove the installed registry (metrics go back to zero-cost off)."""
    global _current
    _current = None


def current() -> Optional[MetricsRegistry]:
    """The installed registry, or None.  Components call this ONCE at
    construction and cache the result -- never per call."""
    if _current is None:
        global _missed_captures
        _missed_captures += 1
    return _current


@contextmanager
def installed(registry: Optional[MetricsRegistry] = None):
    """``with obs.installed() as reg:`` -- scoped install/uninstall."""
    reg = install(registry)
    try:
        yield reg
    finally:
        uninstall()


def pretty(snapshot: Dict[str, Any]) -> str:
    """Human-readable rendering of a :meth:`MetricsRegistry.snapshot`."""
    return json.dumps(snapshot, indent=2, sort_keys=True, default=str)
