"""Hint attribution: which hint decision bought/cost how much, per stage.

HatRPC's hints pick the wire scheme (protocol, buffers, polling); this
report closes the loop by grouping traced stage timings by the *resolved
hint tuple* -- ``(perf_goal, payload-size class, concurrency, protocol)``
-- and emitting per-stage p50/p95 for each tuple.  Reading it answers
"what did declaring ``perf_goal = latency`` on 64-byte payloads do to the
network stage, versus the throughput default?".

Input is committed :class:`~repro.obs.trace.Span` objects (straight from a
``TraceCollector``, or round-tripped through the Chrome trace JSON via
:func:`spans_from_chrome`).  Client stage spans join their hint tuple from
the trace's client root span; server stage spans join through the shared
``trace_id`` -- the cross-node edge the wire envelope paid for.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import (Any, Deque, Dict, Iterable, List, Mapping, Optional,
                    Sequence, Tuple)

from repro.sim.units import KiB

__all__ = [
    "HintKey",
    "StageStats",
    "WindowedAttribution",
    "attribution_table",
    "hint_attribution",
    "payload_class",
    "spans_from_chrome",
]

# Boundaries follow the protocol selector's own regimes: inline-able,
# eager-able, one RTT bounce buffer, rendezvous territory.
_PAYLOAD_CLASSES = ((256, "<=256B"), (4 * KiB, "<=4KiB"),
                    (64 * KiB, "<=64KiB"))


def payload_class(nbytes: Optional[float]) -> str:
    if nbytes is None:
        return "unknown"
    for bound, label in _PAYLOAD_CLASSES:
        if nbytes <= bound:
            return label
    return ">64KiB"


@dataclass(frozen=True)
class HintKey:
    """One resolved hint decision, as the selector saw it."""

    perf_goal: str
    payload: str               # payload-size class label
    concurrency: Any
    protocol: str

    def label(self) -> str:
        return (f"{self.perf_goal}/{self.payload}"
                f"/c={self.concurrency}/{self.protocol}")


@dataclass
class StageStats:
    """Exact (not bucketed) latency stats for one (hint tuple, stage)."""

    count: int
    p50: float
    p95: float
    mean: float
    total: float


def _percentile(sorted_vals: Sequence[float], p: float) -> float:
    """Nearest-rank percentile over the exact samples."""
    rank = max(1, -(-int(p * len(sorted_vals)) // 100))  # ceil(p/100 * n)
    rank = min(rank, len(sorted_vals))
    return sorted_vals[rank - 1]


def _key_from_root(root) -> HintKey:
    attrs = root.attrs
    nbytes = attrs.get("req_bytes", attrs.get("payload_size"))
    return HintKey(
        perf_goal=str(attrs.get("perf_goal", "unknown")),
        payload=payload_class(nbytes),
        concurrency=attrs.get("concurrency", "?"),
        protocol=str(attrs.get("protocol", "unknown")),
    )


def hint_attribution(spans: Iterable[Any]
                     ) -> Dict[HintKey, Dict[str, StageStats]]:
    """Group stage-span durations by hint tuple.

    Returns ``{hint_key: {stage_name: StageStats}}``.  Traces without a
    client root (orphaned server spans) are skipped -- there is no hint
    decision to attribute them to.
    """
    spans = list(spans)
    roots_by_trace: Dict[str, Any] = {}
    for s in spans:
        if s.kind == "client" and not s.parent_span_id:
            roots_by_trace.setdefault(s.trace_id, s)

    samples: Dict[Tuple[HintKey, str], List[float]] = {}
    for s in spans:
        # Zero-duration stages stay in: the simulator charges no time for
        # e.g. in-memory serialization, and an honest 0.00 row beats a
        # missing one.
        if s.kind != "stage":
            continue
        root = roots_by_trace.get(s.trace_id)
        if root is None:
            continue
        key = _key_from_root(root)
        samples.setdefault((key, s.name), []).append(s.end - s.start)

    out: Dict[HintKey, Dict[str, StageStats]] = {}
    for (key, stage), vals in samples.items():
        vals.sort()
        out.setdefault(key, {})[stage] = StageStats(
            count=len(vals),
            p50=_percentile(vals, 50),
            p95=_percentile(vals, 95),
            mean=sum(vals) / len(vals),
            total=sum(vals),
        )
    return out


class WindowedAttribution:
    """Incremental, ring-buffered stage stats -- the live feed behind the
    online tuner.

    :func:`hint_attribution` is batch: it wants every committed span at
    once, which an online consumer cannot afford.  This class accepts one
    sample at a time (``observe(key, stage, value)``), keeps only the most
    recent ``window`` samples per (key, stage), and serves exact
    :class:`StageStats` over that window on demand.  Keys are free-form
    hashables -- the tuner keys by ``(function, payload_class, choice)``;
    :meth:`ingest_spans` bridges from the batch world using the same
    :class:`HintKey` grouping as :func:`hint_attribution`.

    Windowing is the point, not a memory bound: a tuner must weigh *recent*
    behavior, and a long-gone phase polluting the percentiles would stall
    every future decision.
    """

    def __init__(self, window: int = 128):
        if window < 1:
            raise ValueError(f"window must be >= 1: {window}")
        self.window = window
        self._samples: Dict[Tuple[Any, str], Deque[float]] = {}

    def observe(self, key: Any, stage: str, value: float) -> None:
        dq = self._samples.get((key, stage))
        if dq is None:
            dq = deque(maxlen=self.window)
            self._samples[(key, stage)] = dq
        dq.append(value)

    def count(self, key: Any, stage: str) -> int:
        dq = self._samples.get((key, stage))
        return len(dq) if dq is not None else 0

    def stats(self, key: Any, stage: str) -> Optional[StageStats]:
        """Exact stats over the current window, or None if no samples."""
        dq = self._samples.get((key, stage))
        if not dq:
            return None
        vals = sorted(dq)
        return StageStats(
            count=len(vals),
            p50=_percentile(vals, 50),
            p95=_percentile(vals, 95),
            mean=sum(vals) / len(vals),
            total=sum(vals),
        )

    def snapshot(self) -> Dict[Any, Dict[str, StageStats]]:
        """{key: {stage: StageStats}} over every live window."""
        out: Dict[Any, Dict[str, StageStats]] = {}
        for (key, stage) in self._samples:
            st = self.stats(key, stage)
            if st is not None:
                out.setdefault(key, {})[stage] = st
        return out

    def ingest_spans(self, spans: Iterable[Any]) -> int:
        """Feed committed trace spans through the same grouping as
        :func:`hint_attribution`; returns the number of samples taken."""
        spans = list(spans)
        roots_by_trace: Dict[str, Any] = {}
        for s in spans:
            if s.kind == "client" and not s.parent_span_id:
                roots_by_trace.setdefault(s.trace_id, s)
        n = 0
        for s in spans:
            if s.kind != "stage":
                continue
            root = roots_by_trace.get(s.trace_id)
            if root is None:
                continue
            self.observe(_key_from_root(root), s.name, s.end - s.start)
            n += 1
        return n

    def clear(self) -> None:
        self._samples.clear()


# Stable presentation order for the stage taxonomy; anything else
# (cq_wait, backoff, connect, ...) follows alphabetically.
_STAGE_ORDER = ["serialize", "hint_select", "post", "network", "complete",
                "deserialize", "poll", "dispatch", "handler", "backend",
                "reply"]


def _stage_sort_key(stage: str) -> Tuple[int, str]:
    try:
        return (_STAGE_ORDER.index(stage), stage)
    except ValueError:
        return (len(_STAGE_ORDER), stage)


def attribution_table(spans: Iterable[Any], time_unit: float = 1e-6,
                      unit_label: str = "us") -> str:
    """The human-readable per-hint-tuple stage table."""
    report = hint_attribution(spans)
    if not report:
        return "(no attributable stage spans)"
    header = (f"{'hint tuple':44s} {'stage':12s} {'n':>5s} "
              f"{'p50(' + unit_label + ')':>10s} "
              f"{'p95(' + unit_label + ')':>10s} "
              f"{'mean(' + unit_label + ')':>11s}")
    lines = [header, "-" * len(header)]
    for key in sorted(report, key=lambda k: k.label()):
        label = key.label()
        stages = report[key]
        for stage in sorted(stages, key=_stage_sort_key):
            st = stages[stage]
            lines.append(
                f"{label:44s} {stage:12s} {st.count:>5d} "
                f"{st.p50 / time_unit:>10.2f} {st.p95 / time_unit:>10.2f} "
                f"{st.mean / time_unit:>11.2f}")
            label = ""                      # print the tuple once per block
    return "\n".join(lines)


@dataclass
class _LoadedSpan:
    """Span reconstructed from Chrome trace JSON (duck-types Span)."""

    trace_id: str
    span_id: str
    parent_span_id: str
    name: str
    kind: str
    node: str
    start: float
    end: float
    status: str
    attrs: Dict[str, Any]

    @property
    def duration(self) -> float:
        return self.end - self.start


def spans_from_chrome(doc: Mapping[str, Any]) -> List[_LoadedSpan]:
    """Recover trace spans from Chrome ``trace_event`` JSON produced by
    :func:`repro.obs.timeline.TimelineExporter.add_trace_spans` (events
    embed the span identity in ``args``)."""
    out: List[_LoadedSpan] = []
    for ev in doc.get("traceEvents", []):
        args = ev.get("args") or {}
        if "trace_id" not in args or ev.get("ph") not in ("X", "i"):
            continue
        start = ev.get("ts", 0) / 1e6
        dur = ev.get("dur", 0) / 1e6
        attrs = {k: v for k, v in args.items()
                 if k not in ("trace_id", "span_id", "parent_span_id",
                              "kind", "status", "node")}
        out.append(_LoadedSpan(
            trace_id=str(args["trace_id"]),
            span_id=str(args.get("span_id", "")),
            parent_span_id=str(args.get("parent_span_id", "")),
            name=ev.get("name", ""),
            kind=str(args.get("kind", "stage")),
            node=str(args.get("node", "")),
            start=start,
            end=start + dur,
            status=str(args.get("status", "ok")),
            attrs=attrs,
        ))
    return out
