"""Distributed tracing: W3C-traceparent-style context over the RPC wire.

One :class:`TraceCollector` is installed process-wide (mirroring the
metrics registry's capture-once rule in :mod:`repro.obs`): the engine
captures it ONCE at construction, starts a trace per routed call, and
carries the context across the wire inside the RPC framing so server-side
spans are true children of the client call that caused them.

Context and wire format
-----------------------
A context is ``(trace_id, span_id, sampled)`` -- 16-byte trace id, 8-byte
span id, rendered as 32/16 lowercase hex chars (the W3C ``traceparent``
field widths).  On the wire the engine prepends a 30-byte envelope to the
serialized Thrift message, once per *attempt* (so retries and failovers
each produce their own correctly-parented server span)::

    magic(4) = 0xC3 'T' 'R' 'C'   version(1) = 1   flags(1) bit0=sampled
    trace_id(16)                  parent span_id(8)

The magic byte 0xC3 cannot start a Thrift binary message (strict messages
start 0x80, non-strict with a name-length i32), so servers detect and strip
the envelope without ambiguity; requests without an envelope pass through
untouched.  No collector installed, or an unsampled+unfaulted call, means
NO envelope: the wire carries exactly the bytes it carries today.

Sampling
--------
Head-based: the decision is made once at call entry from the collector's
seeded RNG (``sample_rate``), so a run's sampled set is deterministic.
Faulted calls (retry, timeout, failover, breaker trip, channel error) are
ALWAYS committed regardless of the sampling decision -- the spans are
buffered per call and the keep/drop choice is made at call end, so a call
that faults after starting unsampled still yields a complete client-side
trace (server spans exist from the first post-fault attempt onward, since
the envelope is emitted once a call is known to be faulted).

Propagation inside the simulator
--------------------------------
The active call (client) or server request context rides on the simulator
process as ``Process.trace_ctx``; spawned processes inherit the spawner's
context, so detached NIC-chain processes attribute wire time ("network"
spans) to the RPC that posted the work.  With no collector installed every
``trace_ctx`` is ``None`` and instrumented sites pay one attribute check.
"""

from __future__ import annotations

import random
import struct
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "ENVELOPE_BYTES",
    "ActiveCall",
    "ServerCall",
    "Span",
    "SpanContext",
    "TraceCollector",
    "active",
    "build_trees",
    "current",
    "format_trace",
    "install",
    "installed",
    "pack_envelope",
    "split_envelope",
    "uninstall",
]

_MAGIC = b"\xc3TRC"
_VERSION = 1
_ENV = struct.Struct("!4sBB16s8s")
ENVELOPE_BYTES = _ENV.size          # 30
_FLAG_SAMPLED = 0x01


@dataclass(frozen=True)
class SpanContext:
    """What crosses the wire: ids + the head-sampling decision."""

    trace_id: str               # 32 hex chars
    span_id: str                # 16 hex chars (the parent of remote spans)
    sampled: bool = True


@dataclass
class Span:
    """One timed (or instantaneous) piece of a trace."""

    trace_id: str
    span_id: str
    parent_span_id: str         # "" for a trace root
    name: str
    kind: str                   # 'client' | 'server' | 'stage' | 'event'
    node: str                   # simulated node name ("" if unknown)
    start: float                # simulated seconds
    end: float
    status: str = "ok"
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


def pack_envelope(ctx: SpanContext) -> bytes:
    flags = _FLAG_SAMPLED if ctx.sampled else 0
    return _ENV.pack(_MAGIC, _VERSION, flags,
                     bytes.fromhex(ctx.trace_id), bytes.fromhex(ctx.span_id))


def split_envelope(data: bytes) -> Tuple[Optional[SpanContext], bytes]:
    """(context, payload) if ``data`` leads with an envelope, else
    (None, data) -- unenveloped messages pass through byte-identical."""
    if len(data) < ENVELOPE_BYTES or data[:4] != _MAGIC:
        return None, data
    _magic, version, flags, trace_id, span_id = _ENV.unpack_from(data)
    if version != _VERSION:
        return None, data
    ctx = SpanContext(trace_id=trace_id.hex(), span_id=span_id.hex(),
                      sampled=bool(flags & _FLAG_SAMPLED))
    return ctx, data[ENVELOPE_BYTES:]


def active(sim):
    """The trace context riding on the currently-running sim process."""
    p = sim.active_process
    return p.trace_ctx if p is not None else None


class _SpanSink:
    """Shared span-recording machinery for ActiveCall / ServerCall.

    Spans buffer locally until the owner decides the call's fate; stages
    parent under the innermost *open* stage (``open_stage``/``close_stage``
    keep a stack), falling back to the root span.  Recording after the call
    finished is legal -- detached NIC processes may complete an ACK after
    the RPC returned -- and routes straight to the collector iff the call
    was committed.
    """

    def __init__(self, collector: "TraceCollector", trace_id: str,
                 root_span_id: str, node: str, now_fn):
        self.collector = collector
        self.trace_id = trace_id
        self.root_span_id = root_span_id
        self.node = node
        self._now = now_fn
        self._buf: List[Span] = []
        self._stack: List[str] = []          # open span ids (root excluded)
        self._open_spans: Dict[str, Span] = {}
        self._done = False
        self._committed = False

    def now(self) -> float:
        return self._now()

    def _parent(self) -> str:
        return self._stack[-1] if self._stack else self.root_span_id

    def _emit(self, span: Span) -> None:
        if self._done:
            if self._committed:
                self.collector.commit([span])
            return
        self._buf.append(span)

    def stage(self, name: str, start: float, end: float, **attrs) -> Span:
        span = Span(self.trace_id, self.collector._new_span_id(),
                    self._parent(), name, "stage", self.node, start, end,
                    attrs=attrs)
        self._emit(span)
        return span

    def open_stage(self, name: str, start: float, **attrs) -> Span:
        """A stage whose children should nest under it (closed in LIFO
        order by :meth:`close_stage`); ``end`` is patched at close."""
        span = Span(self.trace_id, self.collector._new_span_id(),
                    self._parent(), name, "stage", self.node, start, start,
                    attrs=attrs)
        self._emit(span)
        self._stack.append(span.span_id)
        self._open_spans[span.span_id] = span
        return span

    def annotate(self, **attrs) -> None:
        """Merge attrs into the innermost open stage (or the root span).

        Lets deeper layers enrich the span a shallower layer opened --
        e.g. the KV handler stamps the op name and payload size onto the
        "handler" stage the Thrift processor is holding open.
        """
        if self._stack:
            span = self._open_spans.get(self._stack[-1])
            if span is not None:
                span.attrs.update(attrs)
                return
        self.root.attrs.update(attrs)

    def close_stage(self, end: float) -> None:
        if not self._stack:
            return
        span_id = self._stack.pop()
        span = self._open_spans.pop(span_id, None)
        if span is not None:
            span.end = end

    def event(self, name: str, ts: float, fault: bool = False,
              **attrs) -> Span:
        span = Span(self.trace_id, self.collector._new_span_id(),
                    self._parent(), name, "event", self.node, ts, ts,
                    attrs=attrs)
        self._emit(span)
        return span

    def _close_open_stages(self, end: float) -> None:
        while self._stack:
            self.close_stage(end)


class ActiveCall(_SpanSink):
    """Client-side trace of one engine call: root span + attempt spans.

    The engine opens one *attempt* span per retry-loop iteration (so
    retries and failovers read as sibling subtrees of one trace) and asks
    :meth:`envelope` for the wire header carrying that attempt's span id.
    """

    def __init__(self, collector, trace_id, root_span, node, now_fn,
                 sampled: bool):
        super().__init__(collector, trace_id, root_span.span_id, node,
                         now_fn)
        self.root = root_span
        self._buf.append(root_span)
        self.sampled = sampled
        self.faulted = False
        self._attempt: Optional[Span] = None
        self.attempts = 0

    # -- the engine drives these --------------------------------------------
    def begin_attempt(self, start: float, **attrs) -> Span:
        self.end_attempt(start)      # defensive: never two open attempts
        span = Span(self.trace_id, self.collector._new_span_id(),
                    self.root_span_id, f"attempt#{self.attempts}", "client",
                    self.node, start, start, attrs=attrs)
        self.attempts += 1
        self._emit(span)
        self._attempt = span
        self._stack.append(span.span_id)
        self._open_spans[span.span_id] = span
        return span

    def end_attempt(self, end: float, status: str = "ok", **attrs) -> None:
        if self._attempt is None:
            return
        # Pop stages left open by an abandoned attempt, then the attempt.
        while self._stack and self._stack[-1] != self._attempt.span_id:
            self.close_stage(end)
        self._attempt.status = status
        self._attempt.attrs.update(attrs)
        self.close_stage(end)
        self._attempt = None

    def envelope(self) -> bytes:
        """Wire header for the current attempt (b'' when the call is
        neither sampled nor faulted: zero extra bytes on the wire)."""
        if not (self.sampled or self.faulted):
            return b""
        span_id = (self._attempt.span_id if self._attempt is not None
                   else self.root_span_id)
        return pack_envelope(SpanContext(self.trace_id, span_id, True))

    def event(self, name: str, ts: float, fault: bool = True,
              **attrs) -> Span:
        if fault:
            self.faulted = True
        return super().event(name, ts, fault=False, **attrs)

    def finish(self, end: float, status: str = "ok", **attrs) -> None:
        if self._done:
            return
        self.end_attempt(end, status="error" if status != "ok" else "ok")
        self._close_open_stages(end)
        self.root.end = end
        self.root.status = status
        self.root.attrs.update(attrs)
        self._done = True
        self._committed = self.sampled or self.faulted
        if self._committed:
            self.collector.commit(self._buf)
            self.collector.committed_calls += 1
        else:
            self.collector.dropped_calls += 1
        self._buf = []


class ServerCall(_SpanSink):
    """Server-side trace of one dispatched request.

    The root span's parent is the client attempt span id carried in the
    wire envelope -- the cross-node edge.  Server spans always commit: the
    envelope's presence already encodes the client's keep decision.
    """

    def __init__(self, collector, ctx: SpanContext, root_span, node,
                 now_fn):
        super().__init__(collector, ctx.trace_id, root_span.span_id, node,
                         now_fn)
        self.root = root_span
        self._buf.append(root_span)

    def finish(self, end: float, status: str = "ok", **attrs) -> None:
        if self._done:
            return
        self._close_open_stages(end)
        self.root.end = end
        self.root.status = status
        self.root.attrs.update(attrs)
        self._done = True
        self._committed = True
        self.collector.commit(self._buf)
        self._buf = []


class TraceCollector:
    """The process-wide span store + id generator.

    Deterministic: span/trace ids come from monotonic counters mixed with a
    seed-derived base, and the sampling RNG is seeded -- two runs of the
    same program produce byte-identical trace sets.
    """

    def __init__(self, sample_rate: float = 1.0, seed: int = 0):
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in [0, 1]: {sample_rate}")
        self.sample_rate = sample_rate
        self.rng = random.Random(seed)
        self._trace_base = self.rng.getrandbits(96) << 32
        self._trace_seq = 0
        self._span_seq = 0
        self.spans: List[Span] = []
        self.started_calls = 0
        self.committed_calls = 0
        self.dropped_calls = 0

    # -- ids ----------------------------------------------------------------
    def _new_trace_id(self) -> str:
        self._trace_seq += 1
        return f"{self._trace_base + self._trace_seq:032x}"

    def _new_span_id(self) -> str:
        self._span_seq += 1
        return f"{self._span_seq:016x}"

    def _sample(self) -> bool:
        if self.sample_rate >= 1.0:
            return True
        if self.sample_rate <= 0.0:
            return False
        return self.rng.random() < self.sample_rate

    # -- entry points --------------------------------------------------------
    def start_call(self, name: str, node: str, now_fn,
                   attrs: Optional[Dict[str, Any]] = None) -> ActiveCall:
        """Client side: open a trace for one engine call."""
        self.started_calls += 1
        trace_id = self._new_trace_id()
        start = now_fn()
        root = Span(trace_id, self._new_span_id(), "", name, "client", node,
                    start, start, attrs=dict(attrs or {}))
        return ActiveCall(self, trace_id, root, node, now_fn,
                          sampled=self._sample())

    def server_call(self, ctx: SpanContext, name: str, node: str, now_fn,
                    start: Optional[float] = None,
                    attrs: Optional[Dict[str, Any]] = None) -> ServerCall:
        """Server side: open the remote child span for a received context."""
        t = start if start is not None else now_fn()
        root = Span(ctx.trace_id, self._new_span_id(), ctx.span_id, name,
                    "server", node, t, t, attrs=dict(attrs or {}))
        return ServerCall(self, ctx, root, node, now_fn)

    def commit(self, spans: Iterable[Span]) -> None:
        self.spans.extend(spans)

    # -- reading -------------------------------------------------------------
    def traces(self) -> Dict[str, List[Span]]:
        """Committed spans grouped by trace id (insertion-ordered)."""
        out: Dict[str, List[Span]] = {}
        for span in self.spans:
            out.setdefault(span.trace_id, []).append(span)
        return out

    def stats(self) -> Dict[str, int]:
        return {"started": self.started_calls,
                "committed": self.committed_calls,
                "dropped": self.dropped_calls,
                "spans": len(self.spans)}


# ---------------------------------------------------------------------------
# Tree building / rendering (shared by scripts/obs_dump.py and tests)
# ---------------------------------------------------------------------------

def build_trees(spans: Iterable[Span]
                ) -> Tuple[List[Span], Dict[str, List[Span]]]:
    """(roots, children-by-parent-span-id) for one trace's span list.

    A span whose parent is not in the set (e.g. a server span whose client
    side was never committed) is treated as a root.
    """
    spans = list(spans)
    ids = {s.span_id for s in spans}
    children: Dict[str, List[Span]] = {}
    roots: List[Span] = []
    for s in spans:
        if s.parent_span_id and s.parent_span_id in ids:
            children.setdefault(s.parent_span_id, []).append(s)
        else:
            roots.append(s)
    for kids in children.values():
        kids.sort(key=lambda s: (s.start, s.span_id))
    roots.sort(key=lambda s: (s.start, s.span_id))
    return roots, children


def format_trace(spans: Iterable[Span], time_unit: float = 1e-6) -> str:
    """ASCII tree of one trace (times rendered in ``time_unit`` seconds,
    default microseconds)."""
    spans = list(spans)
    if not spans:
        return "(empty trace)"
    roots, children = build_trees(spans)
    t0 = min(s.start for s in spans)
    unit = "us" if time_unit == 1e-6 else f"x{time_unit:g}s"
    lines = [f"trace {spans[0].trace_id}  ({len(spans)} spans)"]

    def emit(span: Span, prefix: str, last: bool) -> None:
        branch = "`- " if last else "|- "
        rel, dur = (span.start - t0) / time_unit, span.duration / time_unit
        where = f" [{span.kind}@{span.node}]" if span.node else ""
        status = "" if span.status == "ok" else f" !{span.status}"
        detail = ""
        if span.attrs:
            keys = sorted(span.attrs)[:3]
            detail = " {" + ", ".join(
                f"{k}={span.attrs[k]}" for k in keys) + "}"
        lines.append(f"{prefix}{branch}{span.name}{where} "
                     f"+{rel:.2f}{unit} dur={dur:.2f}{unit}"
                     f"{status}{detail}")
        kids = children.get(span.span_id, [])
        ext = "   " if last else "|  "
        for i, kid in enumerate(kids):
            emit(kid, prefix + ext, i == len(kids) - 1)

    for i, root in enumerate(roots):
        emit(root, "", i == len(roots) - 1)
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Process-wide install (same capture-once contract as the metrics registry)
# ---------------------------------------------------------------------------

_current: Optional[TraceCollector] = None


def install(sample_rate: float = 1.0, seed: int = 0,
            collector: Optional[TraceCollector] = None) -> TraceCollector:
    """Install (and return) the process-wide collector.  Install BEFORE
    building the testbed/engine: components capture it at construction."""
    global _current
    _current = collector if collector is not None else TraceCollector(
        sample_rate, seed)
    return _current


def uninstall() -> None:
    global _current
    _current = None


def current() -> Optional[TraceCollector]:
    """The installed collector, or None.  Components call this ONCE at
    construction and cache the result -- never per call."""
    return _current


@contextmanager
def installed(sample_rate: float = 1.0, seed: int = 0,
              collector: Optional[TraceCollector] = None):
    """``with trace.installed() as col:`` -- scoped install/uninstall."""
    col = install(sample_rate, seed, collector)
    try:
        yield col
    finally:
        uninstall()
