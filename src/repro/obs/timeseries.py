"""Continuous telemetry: sim-clock sampling of a MetricsRegistry.

Every instrument in :class:`~repro.obs.metrics.MetricsRegistry` is a
*cumulative* aggregate -- perfect for end-of-run snapshots, blind to
anything that happens mid-run.  This module adds the time axis:

* :class:`RingBuffer` -- a fixed-capacity overwrite-oldest buffer (the
  storage discipline that keeps a long-running sampler allocation-bounded);
* :class:`MetricsSampler` -- a simulator process that every ``interval``
  simulated seconds reads the registry and appends one point per derived
  series:

  - counters become **windowed rates** (``<name>.rate``, delta/dt, with a
    restart guard: a counter that went *backwards* is treated as reset and
    its current value is the whole window's delta);
  - gauges are sampled as-is (``<name>``);
  - histograms become **per-interval distributions**: the bucket-count
    delta between consecutive samples answers ``<name>.p50/.p95/.p99``
    (nearest-rank over the interval's own samples -- not the lifetime
    percentile), plus ``<name>.rate`` and ``<name>.mean``;
  - probes are pulled fresh **every tick** (``<group>.<key>``), so
    probe-backed values are never stale by more than one interval;

* :class:`JsonlSink` -- a line-buffered JSONL stream (one JSON object per
  sample/event) that ``scripts/bench_live.py`` can tail while the run is
  still going, and :func:`read_stream` / :func:`summarize_stream` parse
  back.

Cost discipline: nothing here is wired into any hot path.  A run that
never constructs a sampler pays zero -- the same opt-in contract as the
registry itself.  Sampling is read-only bookkeeping at discrete instants:
it inserts simulator events but consumes no simulated time, so a sampled
run's workload timing is byte-identical to an unsampled one.
"""

from __future__ import annotations

import json
import math
from typing import (Any, Callable, Dict, IO, Iterator, List, Optional,
                    Sequence, Tuple, Union)

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.sim.core import Interrupt, Simulator

__all__ = [
    "JsonlSink",
    "MetricsSampler",
    "RingBuffer",
    "Series",
    "read_stream",
    "summarize_stream",
]


class RingBuffer:
    """Fixed-capacity append-only buffer; full means overwrite-oldest.

    Iteration order is strictly oldest -> newest, and indexing is relative
    to the oldest live element (``buf[0]`` is always the survivor that has
    been around longest).  ``evicted`` counts how many appends have been
    pushed out -- eviction order is exactly append order (FIFO).
    """

    __slots__ = ("capacity", "_buf", "_head", "evicted")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._buf: List[Any] = []
        self._head = 0          # index of the oldest element once full
        self.evicted = 0

    def append(self, item: Any) -> None:
        if len(self._buf) < self.capacity:
            self._buf.append(item)
            return
        self._buf[self._head] = item
        self._head = (self._head + 1) % self.capacity
        self.evicted += 1

    def __len__(self) -> int:
        return len(self._buf)

    def __iter__(self) -> Iterator[Any]:
        for i in range(len(self._buf)):
            yield self._buf[(self._head + i) % len(self._buf)]

    def __getitem__(self, index: int) -> Any:
        n = len(self._buf)
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(n))]
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError(f"index {index} out of range for size {n}")
        return self._buf[(self._head + index) % n]

    @property
    def last(self) -> Any:
        if not self._buf:
            raise IndexError("empty ring buffer")
        return self[len(self._buf) - 1]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<RingBuffer {len(self._buf)}/{self.capacity} "
                f"evicted={self.evicted}>")


class Series:
    """One named time series: ring-buffered ``(t, value)`` points."""

    __slots__ = ("name", "points")

    def __init__(self, name: str, capacity: int):
        self.name = name
        self.points = RingBuffer(capacity)

    def append(self, t: float, value: float) -> None:
        self.points.append((t, value))

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[Tuple[float, float]]:
        return iter(self.points)

    def values(self) -> List[float]:
        return [v for _, v in self.points]

    def times(self) -> List[float]:
        return [t for t, _ in self.points]

    @property
    def last(self) -> Tuple[float, float]:
        return self.points.last

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Series {self.name} n={len(self.points)}>"


class JsonlSink:
    """Streaming JSONL writer: one compact JSON object per line.

    Flushes after every record so an external tailer
    (``scripts/bench_live.py``) sees samples as they land, not at close.
    Accepts a path or an open file-ish object (anything with ``write``).
    """

    def __init__(self, target: Union[str, IO[str]]):
        if hasattr(target, "write"):
            self._f: IO[str] = target           # type: ignore[assignment]
            self._owns = False
            self.path: Optional[str] = getattr(target, "name", None)
        else:
            self._f = open(target, "w")
            self._owns = True
            self.path = str(target)
        self.records_written = 0

    def write(self, record: Dict[str, Any]) -> None:
        self._f.write(json.dumps(record, separators=(",", ":"),
                                 sort_keys=True, default=str))
        self._f.write("\n")
        self._f.flush()
        self.records_written += 1

    def close(self) -> None:
        if self._owns:
            self._f.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_stream(path: Union[str, IO[str]]) -> List[Dict[str, Any]]:
    """Parse a stream JSONL file back into its records (blank lines and
    trailing partial lines -- a tailer racing the writer -- are skipped)."""
    if hasattr(path, "read"):
        lines = path.read().splitlines()        # type: ignore[union-attr]
    else:
        with open(path) as f:
            lines = f.read().splitlines()
    out: List[Dict[str, Any]] = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except ValueError:
            continue                            # partial final line
        if isinstance(rec, dict):
            out.append(rec)
    return out


def summarize_stream(records: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Digest a stream: per-series stats, phases seen, events, SLO verdicts.

    The shared backend of ``scripts/obs_dump.py --series`` and
    ``scripts/bench_live.py``: everything is derived from the records
    alone, so any tool holding the JSONL can reconstruct the run's live
    view after the fact.
    """
    series: Dict[str, Dict[str, Any]] = {}
    phases: List[Tuple[float, str]] = []
    events: List[Dict[str, Any]] = []
    slo: Dict[str, Dict[str, Any]] = {}
    n_samples = 0
    last_t = 0.0
    last_phase: Optional[str] = None
    for rec in records:
        t = float(rec.get("t", 0.0))
        last_t = max(last_t, t)
        kind = rec.get("type")
        if kind == "sample":
            n_samples += 1
            phase = (rec.get("tags") or {}).get("phase")
            # 'done' is terminal: the final flush sample still carries the
            # last window's tag, which must not reopen the run.
            if (phase is not None and phase != last_phase
                    and last_phase != "done"):
                phases.append((t, phase))
                last_phase = phase
            for name, value in (rec.get("metrics") or {}).items():
                st = series.get(name)
                if st is None:
                    st = series[name] = {
                        "n": 0, "min": math.inf, "max": -math.inf,
                        "sum": 0.0, "last": None, "last_t": None,
                        "values": [],
                    }
                v = float(value)
                st["n"] += 1
                st["min"] = min(st["min"], v)
                st["max"] = max(st["max"], v)
                st["sum"] += v
                st["last"] = v
                st["last_t"] = t
                st["values"].append(v)
        elif kind == "event":
            events.append(rec)
            ekind = rec.get("kind", "")
            if ekind == "phase" and rec.get("phase") is not None:
                if rec["phase"] != last_phase:
                    phases.append((t, rec["phase"]))
                    last_phase = rec["phase"]
            elif ekind in ("slo_violation", "slo_recovered"):
                name = rec.get("slo", "?")
                st = slo.setdefault(name, {"violations": 0, "recovered": 0,
                                           "last": None})
                key = ("violations" if ekind == "slo_violation"
                       else "recovered")
                st[key] += 1
                st["last"] = rec
    for st in series.values():
        st["mean"] = st["sum"] / st["n"] if st["n"] else 0.0
    return {
        "n_samples": n_samples,
        "t_end": last_t,
        "phase": last_phase,
        "phases": phases,
        "series": series,
        "events": events,
        "slo": slo,
    }


def _delta_buckets(cur: Dict[int, int],
                   prev: Dict[int, int]) -> Optional[Dict[int, int]]:
    """Per-bucket count delta, or None when the histogram restarted (any
    bucket went backwards -- the caller then treats ``cur`` as the whole
    window's worth)."""
    out: Dict[int, int] = {}
    for idx, n in cur.items():
        d = n - prev.get(idx, 0)
        if d < 0:
            return None
        if d:
            out[idx] = d
    return out


def _bucket_percentile(hist: Histogram, buckets: Dict[int, int],
                       count: int, p: float) -> float:
    """Nearest-rank percentile over a bucket-count delta (upper bucket
    edge, same one-bucket-of-relative-error contract as the registry
    histogram's lifetime percentile)."""
    rank = max(1, math.ceil(p / 100 * count))
    seen = 0
    for idx in sorted(buckets):
        seen += buckets[idx]
        if seen >= rank:
            return hist.bucket_bound(idx)
    raise AssertionError("delta bucket counts do not cover count")


class MetricsSampler:
    """Periodic (sim-clock) sampling of a registry into ring-buffered
    series, with an optional JSONL streaming sink.

    Lifecycle::

        sampler = MetricsSampler(sim, registry, interval=50 * us,
                                 sink=JsonlSink("stream.jsonl"))
        sampler.start()          # primes counter/histogram snapshots
        ... run the workload ...
        sampler.stop()           # takes one final sample, then halts

    ``tags`` is a mutable dict stamped onto every sample record (the
    phased harness keeps ``tags["phase"]`` current); ``on_sample`` hooks
    (``fn(t, metrics, tags)``) run after each sample lands -- the SLO
    watchdog and the harness's annotation watchers attach there.

    ``prefixes``, when given, restricts sampling to instrument names
    starting with any of them (a stream-size valve for huge registries).
    """

    def __init__(self, sim: Simulator, registry: MetricsRegistry,
                 interval: float, capacity: int = 512,
                 sink: Optional[JsonlSink] = None,
                 prefixes: Optional[Sequence[str]] = None):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.sim = sim
        self.registry = registry
        self.interval = interval
        self.capacity = capacity
        self.sink = sink
        self.prefixes = tuple(prefixes) if prefixes else None
        self.tags: Dict[str, Any] = {}
        self.on_sample: List[Callable[[float, Dict[str, float],
                                       Dict[str, Any]], None]] = []
        self.series: Dict[str, Series] = {}
        self.samples = 0
        self.events: List[Dict[str, Any]] = []
        self._proc = None
        self._running = False
        self._last_t: Optional[float] = None
        self._prev_counters: Dict[str, float] = {}
        #: name -> (count, total, buckets copy) at the previous sample
        self._prev_hists: Dict[str, Tuple[int, float, Dict[int, int]]] = {}
        #: histogram name -> times its count went backwards (restarts)
        self._hist_restarts: Dict[str, int] = {}

    # -- lifecycle -----------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> "MetricsSampler":
        """Prime the delta baselines and spawn the sampling process."""
        if self._running:
            raise RuntimeError("sampler already started")
        self._running = True
        self._prime()
        if self.sink is not None:
            self.sink.write({"type": "meta", "t": self.sim.now,
                             "interval": self.interval,
                             "tags": dict(self.tags)})
        self._proc = self.sim.process(self._loop(), name="metrics-sampler")
        return self

    def stop(self, final_sample: bool = True) -> None:
        """Halt the periodic process (idempotent).  By default one last
        sample is taken first, so the tail window is never lost."""
        if not self._running:
            return
        if final_sample and self.sim.now != self._last_t:
            self.sample_once()
        self._running = False
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("sampler stopped")
        self._proc = None

    def _loop(self):
        try:
            while self._running:
                yield self.sim.timeout(self.interval)
                if not self._running:       # stopped while sleeping
                    return
                self.sample_once()
        except Interrupt:
            return

    # -- sampling ------------------------------------------------------------
    def _want(self, name: str) -> bool:
        if self.prefixes is None:
            return True
        return name.startswith(self.prefixes)

    def _prime(self) -> None:
        """Snapshot counter/histogram baselines without emitting points, so
        the first sample reports true *window* deltas instead of charging
        all pre-start history to one interval."""
        self._last_t = self.sim.now
        for name, c in self.registry.counters.items():
            self._prev_counters[name] = c.value
        for name, h in self.registry.histograms.items():
            self._prev_hists[name] = (h.count, h.total, dict(h.buckets))

    def _append(self, out: Dict[str, float], name: str,
                value: float) -> None:
        s = self.series.get(name)
        if s is None:
            s = self.series[name] = Series(name, self.capacity)
        s.append(self.sim.now, value)
        out[name] = value

    def sample_once(self) -> Dict[str, float]:
        """Take one sample now; returns the flat ``{series: value}`` dict."""
        t = self.sim.now
        dt = t - (self._last_t if self._last_t is not None else t)
        if dt <= 0:
            dt = self.interval                 # degenerate same-instant call
        out: Dict[str, float] = {}
        reg = self.registry
        for name, c in reg.counters.items():
            if not self._want(name):
                continue
            prev = self._prev_counters.get(name, 0.0)
            cur = c.value
            delta = cur - prev if cur >= prev else cur   # restart guard
            self._prev_counters[name] = cur
            self._append(out, f"{name}.rate", delta / dt)
        for name, g in reg.gauges.items():
            if self._want(name):
                self._append(out, name, g.value)
        for name, h in reg.histograms.items():
            if not self._want(name):
                continue
            prev = self._prev_hists.get(name)
            if prev is None:
                prev = (0, 0.0, {})
            pcount, ptotal, pbuckets = prev
            dbuckets = (_delta_buckets(h.buckets, pbuckets)
                        if h.count >= pcount else None)
            if dbuckets is None:               # histogram restarted
                # The pre-restart tail of the window is unrecoverable; the
                # post-restart state stands in for the delta.  Say so in
                # the stream instead of passing the splice off as a clean
                # window: an annotation marks the instant, and a
                # cumulative ``<name>.restarts`` series makes the count
                # greppable next to the series it taints.
                dcount, dtotal = h.count, h.total
                dbuckets = dict(h.buckets)
                self._hist_restarts[name] = \
                    self._hist_restarts.get(name, 0) + 1
                self.event("histogram_restart", name=name,
                           prev_count=pcount, count=h.count)
            else:
                dcount, dtotal = h.count - pcount, h.total - ptotal
            self._prev_hists[name] = (h.count, h.total, dict(h.buckets))
            self._append(out, f"{name}.rate", dcount / dt)
            if name in self._hist_restarts:
                self._append(out, f"{name}.restarts",
                             float(self._hist_restarts[name]))
            if dcount > 0:
                self._append(out, f"{name}.mean", dtotal / dcount)
                for p in (50, 95, 99):
                    self._append(
                        out, f"{name}.p{p}",
                        _bucket_percentile(h, dbuckets, dcount, p))
        # Probes are pulled fresh on every tick -- a probe-backed value in
        # the stream is at most one interval old, never a stale capture.
        for group, values in reg.probe_values().items():
            for key, v in values.items():
                name = f"{group}.{key}"
                if self._want(name):
                    self._append(out, name, v)
        self._last_t = t
        self.samples += 1
        if self.sink is not None:
            self.sink.write({"type": "sample", "t": t,
                             "tags": dict(self.tags), "metrics": out})
        for hook in self.on_sample:
            hook(t, out, self.tags)
        return out

    # -- annotations ---------------------------------------------------------
    def event(self, kind: str, t: Optional[float] = None,
              **attrs: Any) -> Dict[str, Any]:
        """Append one annotation event to the stream (and keep it)."""
        rec: Dict[str, Any] = {"type": "event", "kind": kind,
                               "t": self.sim.now if t is None else t}
        rec.update(attrs)
        self.events.append(rec)
        if self.sink is not None:
            self.sink.write(rec)
        return rec

    # -- reading -------------------------------------------------------------
    def get(self, name: str) -> Optional[Series]:
        return self.series.get(name)

    def last_value(self, name: str) -> Optional[float]:
        s = self.series.get(name)
        if s is None or not len(s):
            return None
        return s.last[1]
