"""Prometheus text exposition (version 0.0.4) of a MetricsRegistry.

:func:`render` turns one registry into the plain-text format a Prometheus
scrape endpoint would serve: counters as ``counter``, gauges as ``gauge``
(with a ``<name>_high_water`` companion gauge), histograms as ``summary``
(quantile series + ``_sum``/``_count``), and probe groups as ``gauge``
series labelled by key.  Dotted instrument names become underscore-joined
metric names (``proto.eager_sendrecv.ops`` ->
``hatrpc_proto_eager_sendrecv_ops``) so they survive the Prometheus
``[a-zA-Z_:][a-zA-Z0-9_:]*`` grammar.

This is a file/stdout exporter, not an HTTP server: the simulator has no
wall-clock process to scrape, so ``scripts/obs_dump.py`` and the benchmark
pipeline write the rendering next to their other artifacts.
"""

from __future__ import annotations

import re
from typing import List, Optional

from repro.obs.metrics import Histogram, MetricsRegistry

__all__ = ["render"]

_PREFIX = "hatrpc"
_BAD = re.compile(r"[^a-zA-Z0-9_:]")
_QUANTILES = (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99"))


def _name(dotted: str) -> str:
    metric = _BAD.sub("_", dotted.replace(".", "_"))
    if metric and metric[0].isdigit():
        metric = "_" + metric
    return f"{_PREFIX}_{metric}"


def _fmt(value: float) -> str:
    f = float(value)
    return str(int(f)) if f.is_integer() else repr(f)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace(
        "\n", "\\n")


def _histogram_lines(name: str, hist: Histogram) -> List[str]:
    lines = [f"# TYPE {name} summary"]
    summary = hist.summary()
    for q, stat in _QUANTILES:
        if stat in summary:
            lines.append(
                f'{name}{{quantile="{q}"}} {_fmt(summary[stat])}')
    lines.append(f"{name}_sum {_fmt(summary.get('sum', 0))}")
    lines.append(f"{name}_count {_fmt(summary['count'])}")
    return lines


def render(registry: MetricsRegistry,
           help_text: Optional[bool] = True) -> str:
    """Render ``registry`` in the Prometheus text format (ends with \\n)."""
    lines: List[str] = []
    for dotted in sorted(registry.counters):
        name = _name(dotted)
        if help_text:
            lines.append(f"# HELP {name} counter {dotted}")
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {_fmt(registry.counters[dotted].value)}")
    for dotted in sorted(registry.gauges):
        gauge = registry.gauges[dotted]
        name = _name(dotted)
        if help_text:
            lines.append(f"# HELP {name} gauge {dotted}")
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_fmt(gauge.value)}")
        lines.append(f"# TYPE {name}_high_water gauge")
        lines.append(f"{name}_high_water {_fmt(gauge.high_water)}")
    for dotted in sorted(registry.histograms):
        name = _name(dotted)
        if help_text:
            lines.append(f"# HELP {name} histogram {dotted}")
        lines.extend(_histogram_lines(name, registry.histograms[dotted]))
    for group, values in sorted(registry.probe_values().items()):
        name = _name(group)
        if help_text:
            lines.append(f"# HELP {name} probe group {group}")
        lines.append(f"# TYPE {name} gauge")
        for key in sorted(values):
            lines.append(
                f'{name}{{key="{_escape_label(key)}"}} {_fmt(values[key])}')
    return "\n".join(lines) + "\n"
