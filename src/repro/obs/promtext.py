"""Prometheus text exposition (version 0.0.4) of a MetricsRegistry.

:func:`render` turns one registry into the plain-text format a Prometheus
scrape endpoint would serve: counters as ``counter``, gauges as ``gauge``
(with a ``<name>_high_water`` companion gauge), histograms as
``histogram`` (cumulative ``_bucket{le="..."}`` series from the log
buckets, a ``+Inf`` bucket, ``_sum`` and ``_count``), and probe groups as
``gauge`` series labelled by key.  Dotted instrument names become
underscore-joined metric names (``proto.eager_sendrecv.ops`` ->
``hatrpc_proto_eager_sendrecv_ops``) so they survive the Prometheus
``[a-zA-Z_:][a-zA-Z0-9_:]*`` grammar; HELP text and label values are
escaped per the text 0.0.4 rules (backslash, newline, and -- for labels
-- double quote).

This is a file/stdout exporter, not an HTTP server: the simulator has no
wall-clock process to scrape, so ``scripts/obs_dump.py`` and the benchmark
pipeline write the rendering next to their other artifacts.
"""

from __future__ import annotations

import re
from typing import List, Optional

from repro.obs.metrics import Histogram, MetricsRegistry

__all__ = ["render"]

_PREFIX = "hatrpc"
_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def _name(dotted: str) -> str:
    metric = _BAD.sub("_", dotted.replace(".", "_"))
    if metric and metric[0].isdigit():
        metric = "_" + metric
    return f"{_PREFIX}_{metric}"


def _fmt(value: float) -> str:
    f = float(value)
    return str(int(f)) if f.is_integer() else repr(f)


def _escape_label(value: str) -> str:
    """Label-value escaping per text 0.0.4: ``\\`` -> ``\\\\``,
    ``"`` -> ``\\"``, newline -> ``\\n`` (backslash first, so the escapes
    themselves are not re-escaped)."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace(
        "\n", "\\n")


def _escape_help(text: str) -> str:
    """HELP-text escaping per text 0.0.4: only ``\\`` and newline (a HELP
    line must stay one line; quotes are legal there)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _histogram_lines(name: str, hist: Histogram) -> List[str]:
    """A conformant ``histogram`` exposition: cumulative ``_bucket`` series
    over the log-bucket upper bounds, the mandatory ``+Inf`` bucket, and
    ``_sum``/``_count`` (which must equal the ``+Inf`` bucket)."""
    lines = [f"# TYPE {name} histogram"]
    cum = 0
    for idx in sorted(hist.buckets):
        cum += hist.buckets[idx]
        bound = _fmt(hist.bucket_bound(idx))
        lines.append(f'{name}_bucket{{le="{bound}"}} {cum}')
    lines.append(f'{name}_bucket{{le="+Inf"}} {hist.count}')
    lines.append(f"{name}_sum {_fmt(hist.total)}")
    lines.append(f"{name}_count {hist.count}")
    return lines


def render(registry: MetricsRegistry,
           help_text: Optional[bool] = True) -> str:
    """Render ``registry`` in the Prometheus text format (ends with \\n)."""
    lines: List[str] = []
    for dotted in sorted(registry.counters):
        name = _name(dotted)
        if help_text:
            lines.append(f"# HELP {name} counter {_escape_help(dotted)}")
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {_fmt(registry.counters[dotted].value)}")
    for dotted in sorted(registry.gauges):
        gauge = registry.gauges[dotted]
        name = _name(dotted)
        if help_text:
            lines.append(f"# HELP {name} gauge {_escape_help(dotted)}")
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_fmt(gauge.value)}")
        lines.append(f"# TYPE {name}_high_water gauge")
        lines.append(f"{name}_high_water {_fmt(gauge.high_water)}")
    for dotted in sorted(registry.histograms):
        name = _name(dotted)
        if help_text:
            lines.append(f"# HELP {name} histogram {_escape_help(dotted)}")
        lines.extend(_histogram_lines(name, registry.histograms[dotted]))
    for group, values in sorted(registry.probe_values().items()):
        name = _name(group)
        if help_text:
            lines.append(f"# HELP {name} probe group {_escape_help(group)}")
        lines.append(f"# TYPE {name} gauge")
        for key in sorted(values):
            lines.append(
                f'{name}{{key="{_escape_label(key)}"}} {_fmt(values[key])}')
    return "\n".join(lines) + "\n"
