"""Online SLO evaluation against live metric series.

An :class:`SloSpec` is a declarative statement about a *sampled* series
("``rpc.call.latency.p99 < 200us`` sustained for 500us").  The
:class:`SloWatchdog` attaches to a :class:`~repro.obs.timeseries.
MetricsSampler` and re-evaluates every spec on every sample tick:

* a sample that breaches the comparator starts (or extends) a *breach
  window*; a conforming sample closes it;
* only when the breach has been sustained for ``sustain`` simulated
  seconds does the spec fire **one** typed violation -- a single storm
  produces a single violation event, not one per sample;
* the spec re-arms only after it has *recovered* (a conforming sample),
  so flapping right at the threshold cannot double-fire mid-breach.

Violations and recoveries become three things at once: counters in the
metrics registry (``slo.violations``, ``slo.<name>.violations``), typed
``slo_violation`` / ``slo_recovered`` events in the sampler's JSONL
stream, and instants on the trace timeline when one is attached -- so
the same breach is visible to the regression gate, the live tailer, and
``chrome://tracing``.

Specs over series that do not exist yet (e.g. a histogram that has not
recorded) simply stay PASS until the series appears; a missing metric is
"no data", not a breach.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import MetricsSampler

__all__ = ["SloSpec", "SloState", "SloWatchdog", "SloViolation"]

_COMPARATORS: Dict[str, Callable[[float, float], bool]] = {
    "<": lambda v, t: v < t,
    "<=": lambda v, t: v <= t,
    ">": lambda v, t: v > t,
    ">=": lambda v, t: v >= t,
}


@dataclass(frozen=True)
class SloSpec:
    """One service-level objective over a sampled series.

    ``metric`` names a *series* produced by the sampler (so histogram
    objectives use the derived names: ``rpc.call.latency.p99``), and the
    objective holds while ``value <comparator> threshold``.  ``sustain``
    is how long (sim seconds) the objective must be continuously violated
    before the watchdog raises -- 0 fires on the first breaching sample.
    """

    name: str
    metric: str
    comparator: str          # the *objective*: "<" means value must stay below
    threshold: float
    sustain: float = 0.0
    #: restrict evaluation to these harness phases (matched against the
    #: sampler's ``tags["phase"]``); None = always on.  A phased run's
    #: warmup churn is excluded from SLO verdicts exactly as it is from
    #: MEASUREMENT bench numbers.
    phases: Optional[Tuple[str, ...]] = None
    description: str = ""

    def __post_init__(self):
        if self.comparator not in _COMPARATORS:
            raise ValueError(
                f"unknown comparator {self.comparator!r}; "
                f"expected one of {sorted(_COMPARATORS)}")
        if self.sustain < 0:
            raise ValueError(f"sustain must be >= 0, got {self.sustain}")

    def ok(self, value: float) -> bool:
        return _COMPARATORS[self.comparator](value, self.threshold)


@dataclass
class SloViolation:
    """One fired violation (the sustained kind, not a single bad sample)."""

    slo: str
    metric: str
    t: float                 # when the violation *fired* (sustain elapsed)
    breach_start: float      # when the breach window began
    value: float             # the sample value at fire time
    threshold: float
    comparator: str
    phase: Optional[str] = None   # harness phase at fire time, if tagged
    recovered_t: Optional[float] = None


@dataclass
class SloState:
    """Evaluation state for one spec."""

    spec: SloSpec
    breach_start: Optional[float] = None   # None = currently conforming
    open_violation: Optional[SloViolation] = None
    violations: List[SloViolation] = field(default_factory=list)
    last_value: Optional[float] = None
    samples_seen: int = 0

    @property
    def status(self) -> str:
        if self.open_violation is not None:
            return "VIOLATED"
        if self.breach_start is not None:
            return "BREACHING"
        return "PASS" if self.samples_seen else "NO_DATA"


class SloWatchdog:
    """Evaluates :class:`SloSpec` s on every sampler tick.

    Attach with :meth:`attach`; the watchdog registers itself as an
    ``on_sample`` hook.  ``timeline`` (a ``TimelineExporter``) and
    ``registry`` are optional fan-outs; the sampler's own sink receives
    the typed events either way.
    """

    def __init__(self, specs: List[SloSpec],
                 registry: Optional[MetricsRegistry] = None,
                 timeline: Any = None):
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names in {names}")
        self.specs = list(specs)
        self.states: Dict[str, SloState] = {
            s.name: SloState(spec=s) for s in specs}
        self.registry = registry
        self.timeline = timeline
        self.sampler: Optional[MetricsSampler] = None
        if registry is not None:
            self._violations_total = registry.counter("slo.violations")
            self._recovered_total = registry.counter("slo.recovered")
        else:
            self._violations_total = None
            self._recovered_total = None

    # -- wiring --------------------------------------------------------------
    def attach(self, sampler: MetricsSampler) -> "SloWatchdog":
        self.sampler = sampler
        sampler.on_sample.append(self.observe)
        return self

    # -- evaluation ----------------------------------------------------------
    def observe(self, t: float, metrics: Dict[str, float],
                tags: Dict[str, Any]) -> None:
        """One sampler tick: evaluate every spec that has data."""
        for st in self.states.values():
            if (st.spec.phases is not None
                    and tags.get("phase") not in st.spec.phases):
                # Out of scope: an accumulating breach window does not
                # carry across the boundary (a breach must be sustained
                # *within* the watched phases), but a fired violation
                # stays open so it can still record its recovery.
                st.breach_start = None
                continue
            value = metrics.get(st.spec.metric)
            if value is None:
                continue                 # no data this tick: state holds
            st.samples_seen += 1
            st.last_value = value
            if st.spec.ok(value):
                self._conform(st, t, value, tags)
            else:
                self._breach(st, t, value, tags)

    def _breach(self, st: SloState, t: float, value: float,
                tags: Dict[str, Any]) -> None:
        if st.breach_start is None:
            st.breach_start = t
        if st.open_violation is not None:
            return                       # already fired; wait for recovery
        if t - st.breach_start >= st.spec.sustain:
            v = SloViolation(
                slo=st.spec.name, metric=st.spec.metric, t=t,
                breach_start=st.breach_start, value=value,
                threshold=st.spec.threshold,
                comparator=st.spec.comparator,
                phase=tags.get("phase"))
            st.open_violation = v
            st.violations.append(v)
            self._emit("slo_violation", v)

    def _conform(self, st: SloState, t: float, value: float,
                 tags: Dict[str, Any]) -> None:
        fired = st.open_violation
        st.breach_start = None
        if fired is None:
            return
        fired.recovered_t = t
        st.open_violation = None
        self._emit("slo_recovered", fired, value=value,
                   phase=tags.get("phase"))

    def _emit(self, kind: str, v: SloViolation, **over: Any) -> None:
        attrs: Dict[str, Any] = {
            "slo": v.slo, "metric": v.metric, "value": v.value,
            "threshold": v.threshold, "comparator": v.comparator,
            "breach_start": v.breach_start, "phase": v.phase,
        }
        attrs.update(over)
        if self.registry is not None:
            if kind == "slo_violation":
                self._violations_total.inc()
                self.registry.counter(f"slo.{v.slo}.violations").inc()
            else:
                self._recovered_total.inc()
                self.registry.counter(f"slo.{v.slo}.recovered").inc()
        if self.sampler is not None:
            self.sampler.event(kind, **attrs)
        if self.timeline is not None:
            t = attrs.get("recovered_t", v.t) if kind != "slo_violation" \
                else v.t
            self.timeline.add_instant(
                f"{kind}:{v.slo}", ts=t, cat="slo", scope="g",
                args={k: a for k, a in attrs.items() if a is not None})

    # -- reporting -----------------------------------------------------------
    @property
    def violations(self) -> List[SloViolation]:
        out: List[SloViolation] = []
        for st in self.states.values():
            out.extend(st.violations)
        out.sort(key=lambda v: v.t)
        return out

    def report(self) -> Dict[str, Any]:
        """JSON-able verdict summary (the CI artifact)."""
        slos = []
        for st in self.states.values():
            slos.append({
                "name": st.spec.name,
                "metric": st.spec.metric,
                "objective": (f"{st.spec.metric} {st.spec.comparator} "
                              f"{st.spec.threshold:g}"),
                "sustain": st.spec.sustain,
                "status": st.status,
                "samples": st.samples_seen,
                "last_value": st.last_value,
                "violations": [{
                    "t": v.t, "breach_start": v.breach_start,
                    "value": v.value, "phase": v.phase,
                    "recovered_t": v.recovered_t,
                } for v in st.violations],
            })
        return {
            "slos": slos,
            "total_violations": sum(len(s.violations)
                                    for s in self.states.values()),
            "ok": all(not st.violations and st.status != "VIOLATED"
                      for st in self.states.values()),
        }
