"""Timeline export: CallSpans + sim-clock events -> Chrome ``trace_event``.

The exporter turns what the runtime already records (the tracer's
:class:`~repro.core.tracing.CallSpan` list, the engine's replayable
``fault_trace``) into the Chrome/Perfetto ``trace_event`` JSON format
(load the file at https://ui.perfetto.dev or ``chrome://tracing``):

* one *complete* event (``ph: "X"``) per RPC span -- name = function,
  track (``tid``) = channel, args = protocol/transport/sizes;
* one *instant* event (``ph: "i"``) per fault-trace entry (retries,
  failovers, breaker transitions, timeouts);
* optional *counter* events (``ph: "C"``) for time-series gauges.

Timestamps: the simulator clock is seconds; ``trace_event`` wants
microseconds, so every ``ts``/``dur`` is scaled by 1e6.  Events carry
``pid``/``tid`` so multi-node runs can map nodes onto processes.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = ["TimelineExporter", "export_chrome_trace"]

#: sim seconds -> trace_event microseconds
_US = 1e6


class TimelineExporter:
    """Accumulates trace events; write with :meth:`write`."""

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []
        self._named: set = set()
        self._node_pids: Dict[str, int] = {}

    def pid_for(self, node_name: str) -> int:
        """Stable pid for a simulated node (1-based, first come first
        served) so multi-node runs land on distinct Perfetto process
        tracks instead of all collapsing onto ``pid=0``."""
        pid = self._node_pids.get(node_name)
        if pid is None:
            pid = self._node_pids[node_name] = len(self._node_pids) + 1
            self.name_process(pid, f"node {node_name}")
        return pid

    # -- primitives --------------------------------------------------------
    def add_complete(self, name: str, start: float, duration: float,
                     pid: int = 0, tid: int = 0, cat: str = "rpc",
                     args: Optional[Dict[str, Any]] = None) -> None:
        """One span: ``start``/``duration`` in simulated seconds."""
        ev: Dict[str, Any] = {
            "name": name, "cat": cat, "ph": "X",
            "ts": start * _US, "dur": duration * _US,
            "pid": pid, "tid": tid,
        }
        if args:
            ev["args"] = args
        self.events.append(ev)

    def add_instant(self, name: str, ts: float, pid: int = 0, tid: int = 0,
                    cat: str = "event", scope: str = "t",
                    args: Optional[Dict[str, Any]] = None) -> None:
        ev: Dict[str, Any] = {
            "name": name, "cat": cat, "ph": "i", "s": scope,
            "ts": ts * _US, "pid": pid, "tid": tid,
        }
        if args:
            ev["args"] = args
        self.events.append(ev)

    def add_counter(self, name: str, ts: float,
                    values: Dict[str, float], pid: int = 0) -> None:
        self.events.append({
            "name": name, "ph": "C", "ts": ts * _US, "pid": pid,
            "args": dict(values),
        })

    def name_process(self, pid: int, name: str) -> None:
        """Perfetto metadata: label a pid lane."""
        key = ("process", pid)
        if key in self._named:
            return
        self._named.add(key)
        self.events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": name},
        })

    def name_thread(self, pid: int, tid: int, name: str) -> None:
        key = ("thread", pid, tid)
        if key in self._named:
            return
        self._named.add(key)
        self.events.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": name},
        })

    # -- runtime adapters --------------------------------------------------
    def add_call_spans(self, spans: Iterable[Any], pid: int = 0,
                       process_name: str = "hatrpc-client") -> int:
        """Ingest :class:`~repro.core.tracing.CallSpan`-shaped objects.

        One track per channel index, labeled with the channel's protocol.
        Returns the number of events added.
        """
        self.name_process(pid, process_name)
        n = 0
        for span in spans:
            tid = span.channel if span.channel >= 0 else 999
            self.name_thread(
                pid, tid,
                f"ch{span.channel} {span.protocol or span.transport}")
            self.add_complete(
                span.function, span.start, span.end - span.start,
                pid=pid, tid=tid, cat=span.protocol or span.transport
                or "rpc",
                args={"protocol": span.protocol,
                      "transport": span.transport,
                      "request_bytes": span.request_bytes,
                      "response_bytes": span.response_bytes})
            n += 1
        return n

    def add_fault_trace(self, trace: Iterable[Tuple], pid: int = 0) -> int:
        """Ingest engine ``fault_trace`` tuples
        ``(sim_time, kind, function, channel, detail)`` as instants."""
        n = 0
        for t, kind, fn, channel, detail in trace:
            tid = channel if channel >= 0 else 999
            self.add_instant(kind, t, pid=pid, tid=tid, cat="fault",
                             args={"function": fn, "channel": channel,
                                   "detail": detail})
            n += 1
        return n

    def add_trace_spans(self, spans: Iterable[Any]) -> int:
        """Ingest distributed-trace :class:`~repro.obs.trace.Span` objects.

        Each simulated node becomes its own Perfetto process (via
        :meth:`pid_for`); within a node, each trace gets its own thread
        lane so Perfetto's containment rule nests stage spans under call
        spans.  The span identity (trace/span/parent ids, kind, status)
        rides in ``args`` -- :func:`repro.obs.attribution.spans_from_chrome`
        reconstructs the tree from the file alone.  Returns the number of
        events added.
        """
        trace_tids: Dict[str, int] = {}
        n = 0
        for span in spans:
            pid = self.pid_for(span.node or "?")
            tid = trace_tids.setdefault(span.trace_id, len(trace_tids) + 1)
            self.name_thread(pid, tid, f"trace {span.trace_id[-8:]}")
            args = {
                "trace_id": span.trace_id,
                "span_id": span.span_id,
                "parent_span_id": span.parent_span_id,
                "kind": span.kind,
                "node": span.node,
                "status": span.status,
            }
            args.update(span.attrs)
            if span.kind == "event":
                self.add_instant(span.name, span.start, pid=pid, tid=tid,
                                 cat="fault", args=args)
            else:
                self.add_complete(span.name, span.start, span.duration,
                                  pid=pid, tid=tid, cat=span.kind,
                                  args=args)
            n += 1
        return n

    # -- output ------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {"traceEvents": list(self.events),
                "displayTimeUnit": "ns"}

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    def write(self, path) -> None:
        with open(path, "w") as f:
            json.dump(self.to_dict(), f)


def export_chrome_trace(path, tracer=None, engine=None, spans=None,
                        fault_trace=None, collector=None,
                        pid: int = 0) -> TimelineExporter:
    """One-call export: spans and/or fault events -> Perfetto JSON at
    ``path``.

    Pass any of a ``tracer`` (its flat ``.spans`` are used), an ``engine``
    (its ``.fault_trace`` is used), a distributed-trace ``collector``
    (its tree-structured spans nest per node/trace), or raw ``spans`` /
    ``fault_trace`` sequences.  Returns the exporter (with ``path``
    already written).
    """
    ex = TimelineExporter()
    if tracer is not None:
        ex.add_call_spans(tracer.spans, pid=pid)
    if spans is not None:
        ex.add_call_spans(spans, pid=pid)
    if engine is not None:
        ex.add_fault_trace(engine.fault_trace, pid=pid)
    if fault_trace is not None:
        ex.add_fault_trace(fault_trace, pid=pid)
    if collector is not None:
        ex.add_trace_spans(collector.spans)
    ex.write(path)
    return ex
