"""Allocation-light metrics: counters, gauges, log-bucketed histograms.

The registry is the paper-evaluation companion to :mod:`repro.core.tracing`:
where the tracer records *per-call* spans, the registry accumulates *cheap
aggregate* instruments that every runtime layer (engine, protocols, verbs
datapath, netfab, thrift servers, HatKV) reports into.  RPCAcc-style
per-stage attribution falls out of the naming convention: each layer owns a
dotted prefix (``engine.``, ``proto.``, ``verbs.``, ``cq.``, ``netfab.``,
``thrift.``, ``hatkv.``, ``selector.``).

Cost discipline
---------------
* **Off by default, zero hot-path cost.**  Instrumented components capture
  their instruments (or ``None``) once at construction from
  :func:`repro.obs.current`; a disabled run pays exactly one attribute
  ``is not None`` check per instrumented site -- the same guard pattern as
  ``Tracer``.
* **Allocation-light when on.**  Counters and gauges are a single float
  slot; histograms hold one small dict of log-spaced bucket counts, never
  the raw samples.

Concurrency: the simulator is cooperative and single-threaded, so plain
``+=`` updates are atomic with respect to process switches (which only
happen at ``yield``).  No locks are needed or taken.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing count (ops, bytes, decisions)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0

    def inc(self, n: float = 1) -> None:
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """An instantaneous level (queue depth, in-flight calls)."""

    __slots__ = ("name", "value", "high_water")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0
        self.high_water: float = 0

    def set(self, v: float) -> None:
        self.value = v
        if v > self.high_water:
            self.high_water = v

    def inc(self, n: float = 1) -> None:
        self.set(self.value + n)

    def dec(self, n: float = 1) -> None:
        self.value -= n

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Gauge {self.name}={self.value}>"


class Histogram:
    """Log-bucketed distribution with mergeable buckets.

    Samples are assigned to geometric buckets: bucket ``i`` covers
    ``(lowest * growth**(i-1), lowest * growth**i]``, with everything at or
    below ``lowest`` in bucket 0.  Quantiles are answered from the bucket
    counts by nearest rank, returning the bucket's upper bound -- so a
    reported percentile ``q`` satisfies ``exact <= q <= exact * growth``
    (one bucket of relative error, never an underestimate).  ``min``,
    ``max``, ``sum`` and ``count`` are tracked exactly.
    """

    __slots__ = ("name", "lowest", "growth", "count", "total",
                 "min_value", "max_value", "buckets", "_log_growth")

    def __init__(self, name: str, lowest: float = 1e-9,
                 growth: float = 2.0):
        if lowest <= 0:
            raise ValueError("lowest bound must be positive")
        if growth <= 1.0:
            raise ValueError("growth factor must be > 1")
        self.name = name
        self.lowest = lowest
        self.growth = growth
        self._log_growth = math.log(growth)
        self.count = 0
        self.total: float = 0.0
        self.min_value: float = math.inf
        self.max_value: float = -math.inf
        self.buckets: Dict[int, int] = {}

    # -- recording ---------------------------------------------------------
    def bucket_index(self, value: float) -> int:
        if value <= self.lowest:
            return 0
        # ceil with a tiny epsilon so exact bucket bounds stay in their
        # bucket despite float log round-off.
        return max(0, math.ceil(
            math.log(value / self.lowest) / self._log_growth - 1e-9))

    def bucket_bound(self, index: int) -> float:
        """Upper (inclusive) edge of bucket ``index``."""
        return self.lowest * self.growth ** index

    def record(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"negative sample {value!r} in {self.name}")
        self.count += 1
        self.total += value
        if value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value
        idx = self.bucket_index(value)
        self.buckets[idx] = self.buckets.get(idx, 0) + 1

    # -- reading -----------------------------------------------------------
    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError("no samples")
        return self.total / self.count

    @property
    def min(self) -> float:
        if self.count == 0:
            raise ValueError("no samples")
        return self.min_value

    @property
    def max(self) -> float:
        if self.count == 0:
            raise ValueError("no samples")
        return self.max_value

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile from the buckets (upper bucket edge)."""
        if self.count == 0:
            raise ValueError("no samples")
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0,100], got {p}")
        rank = max(1, math.ceil(p / 100 * self.count))
        seen = 0
        for idx in sorted(self.buckets):
            seen += self.buckets[idx]
            if seen >= rank:
                # Clamp to the exact extremes so the tails stay honest.
                return min(max(self.bucket_bound(idx), self.min_value),
                           self.max_value)
        raise AssertionError("bucket counts do not cover count")

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    # -- merging -----------------------------------------------------------
    def merge(self, other: "Histogram") -> "Histogram":
        """Return a NEW histogram holding both distributions.

        Requires identical bucket geometry (``lowest``/``growth``); neither
        operand is mutated.
        """
        if (other.lowest != self.lowest or other.growth != self.growth):
            raise ValueError(
                "cannot merge histograms with different bucket geometry")
        out = Histogram(self.name, self.lowest, self.growth)
        out.count = self.count + other.count
        out.total = self.total + other.total
        out.min_value = min(self.min_value, other.min_value)
        out.max_value = max(self.max_value, other.max_value)
        out.buckets = dict(self.buckets)
        for idx, n in other.buckets.items():
            out.buckets[idx] = out.buckets.get(idx, 0) + n
        return out

    def summary(self) -> Dict[str, float]:
        """Snapshot dict; ``{"count": 0}`` when empty."""
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min_value,
            "max": self.max_value,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Histogram {self.name} n={self.count}>"


def _nest(flat: Dict[str, Any]) -> Dict[str, Any]:
    """Explode dotted names into a nested dict tree.

    A name that is both a leaf and a prefix (``a`` and ``a.b``) keeps the
    leaf under the reserved key ``""``.
    """
    out: Dict[str, Any] = {}
    for name in sorted(flat):
        node = out
        parts = name.split(".")
        for part in parts[:-1]:
            nxt = node.get(part)
            if not isinstance(nxt, dict):
                nxt = {} if nxt is None else {"": nxt}
                node[part] = nxt
            node = nxt
        leaf = parts[-1]
        if isinstance(node.get(leaf), dict):
            node[leaf][""] = flat[name]
        else:
            node[leaf] = flat[name]
    return out


class MetricsRegistry:
    """Get-or-create home for every instrument in one run.

    Instruments are identified by dotted names; asking twice for the same
    name returns the same object, so independent components (every client
    engine, every CQ) aggregate into shared cluster-wide instruments.

    ``probe(name, fn)`` registers a *pull* source: a zero-argument callable
    returning a flat ``{key: number}`` dict, sampled at :meth:`snapshot`
    time.  Several probes may share a name (one per engine, one per
    fabric); their dicts are summed key-wise -- this is how the engines'
    ``FaultCounters`` fold in as one metric group.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.probes: List[Tuple[str, Callable[[], Dict[str, float]]]] = []

    # -- get-or-create -----------------------------------------------------
    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str, lowest: float = 1e-9,
                  growth: float = 2.0) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(name, lowest, growth)
        return h

    def probe(self, name: str,
              fn: Callable[[], Dict[str, float]]) -> None:
        self.probes.append((name, fn))

    # -- reading -----------------------------------------------------------
    def probe_values(self) -> Dict[str, Dict[str, float]]:
        """Sample every probe, summing groups that share a name."""
        out: Dict[str, Dict[str, float]] = {}
        for name, fn in self.probes:
            group = out.setdefault(name, {})
            for key, value in fn().items():
                group[key] = group.get(key, 0) + value
        return out

    def snapshot(self, nested: bool = True) -> Dict[str, Any]:
        """One structured view of everything the run recorded.

        ``nested=True`` (default) explodes dotted instrument names into a
        tree; ``nested=False`` keeps them flat (the form the benchmark
        pipeline serializes).
        """
        counters = {n: c.value for n, c in self.counters.items()}
        gauges = {n: {"value": g.value, "high_water": g.high_water}
                  for n, g in self.gauges.items()}
        hists: Dict[str, Any] = {n: h.summary()
                                 for n, h in self.histograms.items()}
        probes = self.probe_values()
        if nested:
            return {
                "counters": _nest(counters),
                "gauges": _nest(gauges),
                "histograms": _nest(hists),
                "probes": probes,
            }
        return {"counters": counters, "gauges": gauges,
                "histograms": hists, "probes": probes}

    def flat_values(self) -> Dict[str, float]:
        """Flat ``name -> number`` view (histograms expand per statistic)."""
        out: Dict[str, float] = dict(
            (n, c.value) for n, c in self.counters.items())
        for n, g in self.gauges.items():
            out[f"{n}.value"] = g.value
            out[f"{n}.high_water"] = g.high_water
        for n, h in self.histograms.items():
            for stat, v in h.summary().items():
                out[f"{n}.{stat}"] = v
        for group, values in self.probe_values().items():
            for key, v in values.items():
                out[f"{group}.{key}"] = v
        return out
