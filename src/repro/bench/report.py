"""Machine-readable benchmark records: the ``BENCH_<tag>.json`` pipeline.

Every figure benchmark emits one :class:`BenchRecord` -- figure id, scale,
a hash of its configuration, and a flat dict of named metrics -- into the
process-wide :data:`SINK`.  ``scripts/run_all_figures.py`` (and, via an
atexit hook, a plain pytest run of ``benchmarks/``) flushes the sink to a
single JSON file that ``scripts/check_bench_regression.py`` can diff
against a committed baseline with per-metric tolerances.

Schema (``SCHEMA_VERSION`` guards compatibility)::

    {
      "schema": 1,
      "scale": "small",
      "records": [
        {
          "figure": "fig04",
          "name": "protocol_latency",
          "scale": "small",
          "config": {...},                # the parameter grid that ran
          "config_hash": "9f3a...",       # sha256 of canonical config JSON
          "metrics": {
            "latency_us.busy.direct_writeimm.512":
                {"value": 3.21, "unit": "us", "better": "lower"},
            ...
          },
          "meta": {...}                   # free-form (not compared)
        }, ...
      ]
    }

Output path resolution: ``REPRO_BENCH_OUT`` env var if set, else
``BENCH_<REPRO_BENCH_SCALE>.json`` in the current directory.
"""

from __future__ import annotations

import atexit
import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "SCHEMA_VERSION",
    "SINK",
    "BenchRecord",
    "BenchSink",
    "config_hash",
    "default_bench_path",
    "load_bench",
    "metric",
    "write_bench",
]

SCHEMA_VERSION = 1

_BETTER = ("lower", "higher", "none")


def metric(value: float, unit: str = "", better: str = "lower"
           ) -> Dict[str, Any]:
    """One metric cell.  ``better`` tells the regression checker which
    direction is an improvement ('none' = informational only)."""
    if better not in _BETTER:
        raise ValueError(f"better must be one of {_BETTER}, got {better!r}")
    return {"value": float(value), "unit": unit, "better": better}


def config_hash(config: Dict[str, Any]) -> str:
    """Stable short hash of a JSON-serializable config dict."""
    canon = json.dumps(config, sort_keys=True, separators=(",", ":"),
                       default=str)
    return hashlib.sha256(canon.encode()).hexdigest()[:16]


@dataclass
class BenchRecord:
    """One benchmark's machine-readable result."""

    figure: str                       # e.g. "fig04"
    name: str                         # e.g. "protocol_latency"
    scale: str                        # REPRO_BENCH_SCALE at run time
    config: Dict[str, Any] = field(default_factory=dict)
    metrics: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.figure, self.name, self.scale)

    @property
    def config_hash(self) -> str:
        return config_hash(self.config)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "figure": self.figure,
            "name": self.name,
            "scale": self.scale,
            "config": self.config,
            "config_hash": self.config_hash,
            "metrics": self.metrics,
            "meta": self.meta,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "BenchRecord":
        for req in ("figure", "name", "scale", "metrics"):
            if req not in d:
                raise ValueError(f"bench record missing field {req!r}")
        for mname, m in d["metrics"].items():
            if "value" not in m:
                raise ValueError(f"metric {mname!r} has no value")
        return cls(figure=d["figure"], name=d["name"], scale=d["scale"],
                   config=d.get("config", {}), metrics=d["metrics"],
                   meta=d.get("meta", {}))


def default_bench_path() -> str:
    out = os.environ.get("REPRO_BENCH_OUT")
    if out:
        return out
    scale = os.environ.get("REPRO_BENCH_SCALE", "small")
    return f"BENCH_{scale}.json"


def write_bench(records: List[BenchRecord], path: Optional[str] = None
                ) -> str:
    """Write one BENCH_*.json; returns the path written."""
    path = path or default_bench_path()
    scales = sorted({r.scale for r in records})
    doc = {
        "schema": SCHEMA_VERSION,
        "scale": scales[0] if len(scales) == 1 else scales,
        "records": [r.to_dict() for r in records],
    }
    with open(path, "w") as f:
        json.dump(doc, f, indent=1, sort_keys=True)
        f.write("\n")
    return path


def load_bench(path: str) -> List[BenchRecord]:
    """Load and validate one BENCH_*.json."""
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or "records" not in doc:
        raise ValueError(f"{path}: not a BENCH file (no 'records')")
    schema = doc.get("schema")
    if schema != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema {schema!r} != supported {SCHEMA_VERSION}")
    return [BenchRecord.from_dict(d) for d in doc["records"]]


class BenchSink:
    """Process-wide accumulator the benchmarks emit into."""

    def __init__(self) -> None:
        self.records: List[BenchRecord] = []
        self._flushed = False

    def add(self, record: BenchRecord) -> None:
        # Replace a same-key record (a re-run of the same figure in one
        # process) instead of duplicating it.
        self.records = [r for r in self.records if r.key != record.key]
        self.records.append(record)
        self._flushed = False

    def flush(self, path: Optional[str] = None) -> Optional[str]:
        """Write accumulated records (no-op when empty); returns path."""
        if not self.records:
            return None
        path = write_bench(self.records, path)
        self._flushed = True
        return path

    def clear(self) -> None:
        self.records = []
        self._flushed = True

    def _atexit_flush(self) -> None:
        # A pytest run of benchmarks/ emits records but never calls
        # flush(); write them on exit so `BENCH_*.json` always appears.
        if self.records and not self._flushed:
            try:
                path = self.flush()
                print(f"[repro.bench] wrote {path} "
                      f"({len(self.records)} records)")
            except OSError:  # pragma: no cover - best-effort at exit
                pass


SINK = BenchSink()
atexit.register(SINK._atexit_flush)
