"""RPC-like protocol benchmarks (the workloads of the paper's Section 3.1).

``run_protocol_bench`` stands up one server node and N client connections
spread across the remaining nodes, runs fixed-size ping-pong RPCs, and
reports latency statistics and aggregate throughput.  It reproduces the
experimental conditions of Figures 4-5 and 11-14:

* clients are NUMA-bound while the client count stays within one NUMA
  domain (the paper binds for <=16 clients), unbound beyond that;
* a warm-up phase is excluded from measurement;
* throughput is ops completed in the measured window / window length.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.bench.stats import LatencyStats
from repro.protocols import ProtoConfig, get_protocol
from repro.sim.units import KiB
from repro.testbed import Testbed
from repro.verbs.cq import PollMode

__all__ = ["BenchResult", "ProtoBenchSpec", "run_protocol_bench"]

#: the paper binds clients to the NIC's NUMA node up to this count (S5.2)
NUMA_BIND_LIMIT = 16


@dataclass(frozen=True)
class ProtoBenchSpec:
    """One benchmark configuration (one point of a figure)."""

    protocol: str
    payload: int = 512
    resp_payload: Optional[int] = None   # default: same as payload
    n_clients: int = 1
    poll_mode: PollMode = PollMode.BUSY
    iters: int = 30                      # measured calls per client
    warmup: int = 5                      # discarded calls per client
    n_nodes: int = 10                    # 1 server + (n-1) client nodes
    numa_bind: Optional[bool] = None     # None = paper's <=16 rule
    server_work: float = 0.0             # CPU-seconds per request handler
    max_msg: Optional[int] = None        # default: payload + slack

    @property
    def resp(self) -> int:
        return self.resp_payload if self.resp_payload is not None else self.payload


@dataclass
class BenchResult:
    spec: ProtoBenchSpec
    latency: LatencyStats
    throughput_ops: float      # RPCs/second over the measured window
    duration: float            # measured-window length (simulated seconds)
    server_registered_bytes: int
    server_cpu_utilization: float

    @property
    def mean_latency(self) -> float:
        return self.latency.mean


def run_protocol_bench(spec: ProtoBenchSpec,
                       testbed: Optional[Testbed] = None,
                       handler: Optional[Callable] = None) -> BenchResult:
    tb = testbed or Testbed(n_nodes=spec.n_nodes)
    sim = tb.sim
    server_node = tb.node(0)
    client_nodes = tb.nodes[1:]

    numa_bind = spec.numa_bind
    if numa_bind is None:
        numa_bind = spec.n_clients <= NUMA_BIND_LIMIT

    max_msg = spec.max_msg or (max(spec.payload, spec.resp) + 4 * KiB)
    cfg = ProtoConfig(poll_mode=spec.poll_mode, max_msg=max_msg,
                      numa_local=numa_bind)

    resp_bytes = bytes(i % 251 for i in range(spec.resp))
    if handler is None:
        if spec.server_work > 0:
            def handler(_req, _w=spec.server_work):
                yield server_node.compute(_w)
                return resp_bytes
        else:
            def handler(_req):
                return resp_bytes

    client_cls, server_cls = get_protocol(spec.protocol)
    server = server_cls(server_node.nic, 1, handler, cfg).start()

    req_bytes = bytes(i % 251 for i in range(spec.payload))
    stats = LatencyStats()
    window = {"start": None, "end": 0.0, "ops": 0}

    def client_proc(idx: int):
        node = client_nodes[idx % len(client_nodes)]
        client = client_cls(node.nic, cfg)
        yield from client.connect(server_node, 1)
        for k in range(spec.warmup + spec.iters):
            t0 = sim.now
            yield from client.call(req_bytes, resp_hint=spec.resp)
            if k >= spec.warmup:
                if window["start"] is None:
                    window["start"] = t0
                stats.record(sim.now - t0)
                window["ops"] += 1
                window["end"] = max(window["end"], sim.now)

    for i in range(spec.n_clients):
        sim.process(client_proc(i), name=f"client-{i}")
    sim.run()

    duration = max(window["end"] - (window["start"] or 0.0), 1e-12)
    cpu = server_node.cpu
    return BenchResult(
        spec=spec,
        latency=stats,
        throughput_ops=window["ops"] / duration,
        duration=duration,
        server_registered_bytes=server_node.nic.registered_bytes,
        server_cpu_utilization=cpu.utilization(max(sim.now, 1e-12)),
    )
