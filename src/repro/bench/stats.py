"""Latency/throughput statistics helpers."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List

__all__ = ["LatencyStats", "percentile"]


def percentile(samples: List[float], p: float) -> float:
    """Nearest-rank percentile; p in [0, 100]."""
    if not samples:
        raise ValueError("no samples")
    if not 0 <= p <= 100:
        raise ValueError(f"percentile must be in [0,100], got {p}")
    s = sorted(samples)
    rank = max(1, math.ceil(p / 100 * len(s)))
    return s[rank - 1]


@dataclass
class LatencyStats:
    """Accumulates per-call latencies."""

    samples: List[float] = field(default_factory=list)

    def record(self, latency: float) -> None:
        self.samples.append(latency)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples)

    @property
    def p50(self) -> float:
        return percentile(self.samples, 50)

    @property
    def p95(self) -> float:
        return percentile(self.samples, 95)

    @property
    def p99(self) -> float:
        return percentile(self.samples, 99)

    @property
    def min(self) -> float:
        return min(self.samples)

    @property
    def max(self) -> float:
        return max(self.samples)

    def merge(self, other: "LatencyStats") -> "LatencyStats":
        self.samples.extend(other.samples)
        return self
