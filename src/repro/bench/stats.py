"""Latency/throughput statistics helpers."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["LatencyStats", "percentile"]


def percentile(samples: List[float], p: float) -> float:
    """Nearest-rank percentile; p in [0, 100]."""
    if not samples:
        raise ValueError("no samples")
    if not 0 <= p <= 100:
        raise ValueError(f"percentile must be in [0,100], got {p}")
    s = sorted(samples)
    rank = max(1, math.ceil(p / 100 * len(s)))
    return s[rank - 1]


@dataclass
class LatencyStats:
    """Accumulates per-call latencies.

    Every accessor raises ``ValueError("no samples")`` on an empty
    accumulator (one uniform contract -- no bare ``ZeroDivisionError`` from
    ``mean`` or bare ``ValueError`` from the builtins in ``min``/``max``).
    """

    samples: List[float] = field(default_factory=list)

    def record(self, latency: float) -> None:
        self.samples.append(latency)

    def _require_samples(self) -> None:
        if not self.samples:
            raise ValueError("no samples")

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        self._require_samples()
        return sum(self.samples) / len(self.samples)

    @property
    def p50(self) -> float:
        return percentile(self.samples, 50)

    @property
    def p95(self) -> float:
        return percentile(self.samples, 95)

    @property
    def p99(self) -> float:
        return percentile(self.samples, 99)

    @property
    def min(self) -> float:
        self._require_samples()
        return min(self.samples)

    @property
    def max(self) -> float:
        self._require_samples()
        return max(self.samples)

    def merge(self, other: "LatencyStats") -> "LatencyStats":
        """Return a NEW LatencyStats holding both sample sets.

        Neither operand is mutated (the previous in-place contract made
        ``a.merge(b)`` silently alias growth onto ``a``).
        """
        return LatencyStats(self.samples + other.samples)

    def summary(self) -> Dict[str, float]:
        """Snapshot dict for reports; ``{"count": 0}`` when empty."""
        if not self.samples:
            return {"count": 0}
        return {"count": self.count, "mean": self.mean, "p50": self.p50,
                "p95": self.p95, "p99": self.p99, "min": self.min,
                "max": self.max}
