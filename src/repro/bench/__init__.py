"""Measurement harness shared by tests and the paper-figure benchmarks."""

from repro.bench.stats import LatencyStats, percentile
from repro.bench.harness import (
    Phase,
    PhasedRun,
    PhaseWindow,
    Scenario,
    ScenarioMatrix,
    StormSpec,
)
from repro.bench.proto_runner import (
    BenchResult,
    ProtoBenchSpec,
    run_protocol_bench,
)
from repro.bench.report import (
    SINK,
    BenchRecord,
    BenchSink,
    config_hash,
    default_bench_path,
    load_bench,
    metric,
    write_bench,
)

__all__ = [
    "BenchRecord",
    "BenchResult",
    "BenchSink",
    "LatencyStats",
    "Phase",
    "PhaseWindow",
    "PhasedRun",
    "ProtoBenchSpec",
    "SINK",
    "Scenario",
    "ScenarioMatrix",
    "StormSpec",
    "config_hash",
    "default_bench_path",
    "load_bench",
    "metric",
    "percentile",
    "run_protocol_bench",
    "write_bench",
]
