"""Measurement harness shared by tests and the paper-figure benchmarks."""

from repro.bench.stats import LatencyStats, percentile
from repro.bench.proto_runner import (
    BenchResult,
    ProtoBenchSpec,
    run_protocol_bench,
)

__all__ = [
    "BenchResult",
    "LatencyStats",
    "ProtoBenchSpec",
    "percentile",
    "run_protocol_bench",
]
