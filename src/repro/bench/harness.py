"""Phased long-run benchmark harness.

A one-shot benchmark snapshots cumulative metrics at the end of the run,
so warmup pollution, tuner epoch switches, admission shed waves, and
shard imbalance are invisible *as they happen*.  :class:`PhasedRun`
structures a run into explicit phases::

    PREPARING -> WARMUP -> MEASUREMENT -> COOLDOWN

and attributes every operation to the phase in which it **started** --
an op that begins in WARMUP and completes in MEASUREMENT is warmup work,
so MEASUREMENT numbers provably exclude the warmup window.  Each phase
becomes its own :class:`~repro.bench.report.BenchRecord` (record name
``<name>.<phase>``); only MEASUREMENT metrics carry regression-gate
directions, the other phases are emitted with ``better="none"`` so the
checker treats them as informational.

The harness composes with the rest of the observability stack rather
than replacing it:

* give it a :class:`~repro.obs.timeseries.MetricsSampler` and every
  phase transition is stamped into the sampler's tags (so each stream
  sample is phase-attributed) and emitted as a typed ``phase`` event;
* give it a ``TimelineExporter`` and transitions/annotations become
  instants on the trace timeline, and :meth:`watch_series` mirrors
  sampled series (e.g. ``hatkv.router.keys.*`` shard balance) as live
  counter tracks;
* :meth:`watch_tuner` / :meth:`watch_admission` subscribe to the
  :class:`~repro.core.tuner.HintTuner` decision hook and the
  :class:`~repro.core.overload.AdmissionGate` high-water hook, and
  detect shed waves from the sampled rejection rate, so hint epoch
  switches and load shedding land in the stream and on the timeline
  with zero bench-specific glue.

Driving pattern (the ``benchmarks/`` suite uses exactly this shape)::

    run = PhasedRun(sim, name="ycsb_b", warmup=..., measurement=...,
                    cooldown=..., registry=reg, sampler=sampler)
    driver = sim.process(run.drive(prepare=load_records()))
    procs = [sim.process(client(i)) for i in range(n)]   # loop while not run.stopped
    sim.run(until=driver)            # phases elapse
    sim.run(until=AllOf(sim, procs)) # in-flight ops drain
    run.stop()                       # final sample + sampler halt
    sim.run()                        # heap drains normally
    run.emit_phase_records("figPH", "ycsb_b", config={...})

:class:`ScenarioMatrix` is the front end: the cross product of workload
skew x value size x storm injection, each combo a named
:class:`Scenario` that parameterizes one :class:`PhasedRun`.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field, fields, is_dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence

from repro.bench.report import metric
from repro.bench.stats import LatencyStats
from repro.sim.core import Simulator

__all__ = [
    "Phase",
    "PhaseWindow",
    "PhasedRun",
    "Scenario",
    "ScenarioMatrix",
    "StormSpec",
]


class Phase(enum.Enum):
    """Benchmark lifecycle phases, in order."""

    PREPARING = "preparing"
    WARMUP = "warmup"
    MEASUREMENT = "measurement"
    COOLDOWN = "cooldown"

    def __str__(self) -> str:  # pragma: no cover - display aid
        return self.value


PHASE_ORDER = [Phase.PREPARING, Phase.WARMUP, Phase.MEASUREMENT,
               Phase.COOLDOWN]


@dataclass
class PhaseWindow:
    """One phase's time window; ``end`` is None while the phase is open."""

    phase: Phase
    start: float
    end: Optional[float] = None

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError(f"phase {self.phase.value} still open")
        return self.end - self.start

    def contains(self, t: float) -> bool:
        return self.start <= t and (self.end is None or t < self.end)


def _annotate_fields(obj: Any) -> Dict[str, Any]:
    """Flatten a decision/event object into JSON-able annotation attrs."""
    if is_dataclass(obj) and not isinstance(obj, type):
        raw = {f.name: getattr(obj, f.name) for f in fields(obj)}
    elif isinstance(obj, dict):
        raw = dict(obj)
    else:                                  # pragma: no cover - fallback
        raw = {k: v for k, v in vars(obj).items()
               if not k.startswith("_")}
    out: Dict[str, Any] = {}
    for k, v in raw.items():
        if isinstance(v, (str, int, float, bool)) or v is None:
            out[k] = v
        elif isinstance(v, enum.Enum):
            out[k] = v.value
        else:
            out[k] = str(v)
    return out


class PhasedRun:
    """Drives the phase machine and attributes per-op results to phases."""

    def __init__(self, sim: Simulator, name: str, warmup: float,
                 measurement: float, cooldown: float = 0.0,
                 registry: Any = None, sampler: Any = None,
                 watchdog: Any = None, timeline: Any = None):
        for label, d in (("warmup", warmup), ("measurement", measurement),
                         ("cooldown", cooldown)):
            if d < 0:
                raise ValueError(f"{label} duration must be >= 0, got {d}")
        if measurement <= 0:
            raise ValueError("measurement duration must be positive")
        self.sim = sim
        self.name = name
        self.durations = {Phase.WARMUP: warmup,
                          Phase.MEASUREMENT: measurement,
                          Phase.COOLDOWN: cooldown}
        self.registry = registry
        self.sampler = sampler
        self.watchdog = watchdog
        self.timeline = timeline
        self.phase: Optional[Phase] = None
        self.windows: List[PhaseWindow] = []
        self.stopped = False
        self.on_phase: List[Callable[[Phase, float], None]] = []
        #: phase -> op name -> latency accumulator (start-time attribution)
        self.stats: Dict[Phase, Dict[str, LatencyStats]] = {
            p: {} for p in PHASE_ORDER}
        #: ops recorded before PREPARING opened / after COOLDOWN closed
        self.unattributed = 0
        self.annotations: List[Dict[str, Any]] = []
        self._started_sampler = False
        if registry is not None:
            self._phase_gauge = registry.gauge("bench.phase")
            self._ops_counter = registry.counter("bench.ops")
        else:
            self._phase_gauge = None
            self._ops_counter = None

    # -- the phase machine ---------------------------------------------------
    def drive(self, prepare: Any = None) -> Iterator[Any]:
        """Generator to run as the driver process.

        ``prepare`` is an optional sub-generator (bulk load, connection
        ramp); the PREPARING window covers exactly its execution.  The
        three timed phases then elapse by simulator timeouts.
        """
        if self.sampler is not None and not self.sampler.running:
            self.sampler.start()
            self._started_sampler = True
        self._enter(Phase.PREPARING)
        if prepare is not None:
            yield from prepare
        for phase in (Phase.WARMUP, Phase.MEASUREMENT, Phase.COOLDOWN):
            self._enter(phase)
            if self.durations[phase] > 0:
                yield self.sim.timeout(self.durations[phase])
        self._close()

    def _enter(self, phase: Phase) -> None:
        now = self.sim.now
        if self.windows and self.windows[-1].end is None:
            self.windows[-1].end = now
        self.windows.append(PhaseWindow(phase, now))
        self.phase = phase
        if self._phase_gauge is not None:
            self._phase_gauge.set(PHASE_ORDER.index(phase))
        if self.sampler is not None:
            self.sampler.tags["phase"] = phase.value
            self.sampler.event("phase", phase=phase.value, run=self.name)
        if self.timeline is not None:
            self.timeline.add_instant(f"phase:{phase.value}", ts=now,
                                      cat="bench", scope="g",
                                      args={"run": self.name})
        for hook in self.on_phase:
            hook(phase, now)

    def _close(self) -> None:
        now = self.sim.now
        if self.windows and self.windows[-1].end is None:
            self.windows[-1].end = now
        self.stopped = True
        if self.sampler is not None:
            self.sampler.event("phase", phase="done", run=self.name)

    def stop(self) -> None:
        """Call after the drive process (and clients) have completed:
        takes the final sample and halts a sampler this run started."""
        if not self.stopped:
            self._close()
        if self.sampler is not None and self._started_sampler:
            self.sampler.stop()
            self._started_sampler = False

    # -- attribution ---------------------------------------------------------
    def phase_of(self, t: float) -> Optional[Phase]:
        """Which phase a time instant belongs to (start-inclusive)."""
        for w in reversed(self.windows):
            if w.contains(t):
                return w.phase
        return None

    def record(self, op: str, latency: float,
               start: Optional[float] = None) -> None:
        """Record one completed operation.

        Attribution is by *start* time (default ``now - latency``): work
        that began before MEASUREMENT opened can never inflate it.
        """
        t0 = self.sim.now - latency if start is None else start
        phase = self.phase_of(t0)
        if phase is None:
            self.unattributed += 1
            return
        per_op = self.stats[phase]
        st = per_op.get(op)
        if st is None:
            st = per_op[op] = LatencyStats()
        st.record(latency)
        if self._ops_counter is not None:
            self._ops_counter.inc()
            self.registry.histogram(f"bench.op_latency.{op}").record(latency)

    def ops(self, phase: Phase) -> int:
        return sum(s.count for s in self.stats[phase].values())

    def window(self, phase: Phase) -> Optional[PhaseWindow]:
        for w in self.windows:
            if w.phase is phase:
                return w
        return None

    def throughput(self, phase: Phase) -> float:
        """Ops attributed to ``phase`` per second of its window."""
        w = self.window(phase)
        if w is None or w.end is None or w.duration <= 0:
            return 0.0
        return self.ops(phase) / w.duration

    # -- annotations ---------------------------------------------------------
    def annotate(self, kind: str, **attrs: Any) -> Dict[str, Any]:
        """One typed annotation: kept, streamed, and timelined at once."""
        now = self.sim.now
        # 'kind'/'t'/'phase' are the envelope; a payload field with one of
        # those names (e.g. TunerDecision.kind) is kept under a prefix.
        attrs = {(k if k not in ("kind", "t", "phase") else f"attr_{k}"): v
                 for k, v in attrs.items()}
        rec = {"kind": kind, "t": now,
               "phase": self.phase.value if self.phase else None}
        rec.update(attrs)
        self.annotations.append(rec)
        if self.sampler is not None:
            self.sampler.event(kind, phase=rec["phase"], **attrs)
        if self.timeline is not None:
            self.timeline.add_instant(
                kind, ts=now, cat="bench", scope="g",
                args={k: v for k, v in rec.items()
                      if k not in ("kind", "t") and v is not None})
        return rec

    def watch_tuner(self, tuner: Any, label: str = "tuner") -> None:
        """Annotate every HintTuner decision (epoch switch/revert)."""

        def hook(d: Any) -> None:
            attrs = _annotate_fields(d)
            attrs["decision"] = attrs.pop("kind", "switch")
            attrs.pop("time", None)        # annotate stamps sim.now itself
            self.annotate("tuner_decision", tuner=label, **attrs)

        tuner.on_decision.append(hook)

    def watch_admission(self, gate: Any, label: str = "admission") -> None:
        """Annotate AdmissionGate high-water marks and shed waves.

        High-water events come from the gate's own hook; shed *waves*
        (rejection rate going nonzero / back to zero) are detected from
        the sampled ``admission.rejected.rate`` series, so one sustained
        storm is two annotations, not thousands.
        """
        gate.on_high_water.append(
            lambda occupancy: self.annotate(
                "admission_high_water", gate=label, occupancy=occupancy))
        if self.sampler is None:
            return
        state = {"shedding": False}

        def on_sample(t: float, metrics: Dict[str, float],
                      tags: Dict[str, Any]) -> None:
            rate = metrics.get("admission.rejected.rate", 0.0)
            if rate > 0 and not state["shedding"]:
                state["shedding"] = True
                self.annotate("admission_shed_start", gate=label,
                              rejected_rate=rate)
            elif rate == 0 and state["shedding"]:
                state["shedding"] = False
                self.annotate("admission_shed_end", gate=label)

        self.sampler.on_sample.append(on_sample)

    def watch_series(self, prefix: str,
                     track: Optional[str] = None) -> None:
        """Mirror sampled series matching ``prefix`` onto the timeline as
        one counter track (e.g. per-shard key balance as a stacked graph
        in ``chrome://tracing``)."""
        if self.sampler is None or self.timeline is None:
            return
        track = track or prefix

        def on_sample(t: float, metrics: Dict[str, float],
                      tags: Dict[str, Any]) -> None:
            values = {name[len(prefix):].lstrip("."): v
                      for name, v in metrics.items()
                      if name.startswith(prefix)}
            if values:
                self.timeline.add_counter(track, ts=t, values=values)

        self.sampler.on_sample.append(on_sample)

    # -- reporting -----------------------------------------------------------
    def phase_metrics(self, phase: Phase) -> Dict[str, Dict[str, Any]]:
        """Metric cells for one phase's BenchRecord.

        MEASUREMENT carries regression directions (throughput higher=
        better, latency lower=better); every other phase is informational
        (``better="none"``) so baseline noise there can never gate a PR.
        """
        from repro.sim.units import us
        gated = phase is Phase.MEASUREMENT
        w = self.window(phase)
        out: Dict[str, Dict[str, Any]] = {}
        out["tput_kops"] = metric(
            round(self.throughput(phase) / 1e3, 2), unit="kops",
            better="higher" if gated else "none")
        out["ops"] = metric(self.ops(phase), unit="ops", better="none")
        if w is not None and w.end is not None:
            out["duration_us"] = metric(round(w.duration / us, 3),
                                        unit="us", better="none")
        for op, st in sorted(self.stats[phase].items()):
            if not st.count:
                continue
            for pname, val in (("p50", st.p50), ("p95", st.p95),
                               ("p99", st.p99)):
                out[f"lat_us.{op}.{pname}"] = metric(
                    round(val / us, 3), unit="us",
                    better="lower" if gated else "none")
        return out

    def emit_phase_records(self, figure: str, name: Optional[str] = None,
                           config: Optional[Dict[str, Any]] = None,
                           **meta: Any) -> List[Any]:
        """One BenchRecord per elapsed phase (``<name>.<phase>``)."""
        from repro.bench.report import SINK, BenchRecord
        import os
        name = name or self.name
        scale = os.environ.get("REPRO_BENCH_SCALE", "small")
        recs = []
        for phase in PHASE_ORDER:
            w = self.window(phase)
            if w is None:
                continue
            rec = BenchRecord(
                figure=figure, name=f"{name}.{phase.value}", scale=scale,
                config=dict(config or {}),
                metrics=self.phase_metrics(phase),
                meta={"phase": phase.value, "run": self.name, **meta})
            SINK.add(rec)
            recs.append(rec)
        return recs

    def summary(self) -> Dict[str, Any]:
        """Free-form digest (stdout tables, debugging)."""
        return {
            "name": self.name,
            "phases": [{
                "phase": w.phase.value, "start": w.start, "end": w.end,
                "ops": self.ops(w.phase),
                "tput": self.throughput(w.phase),
            } for w in self.windows],
            "unattributed": self.unattributed,
            "annotations": len(self.annotations),
        }


@dataclass(frozen=True)
class StormSpec:
    """Overload-storm injection, placed relative to MEASUREMENT start.

    ``at`` and ``duration`` are offsets into the measurement window; the
    scenario runner turns this into a
    :class:`~repro.faults.plan.OverloadStorm` armed when MEASUREMENT
    opens (the injector interprets event times relative to arming).
    """

    at: float
    duration: float
    clients: int = 32

    def label(self) -> str:
        return f"storm{self.clients}"


@dataclass(frozen=True)
class Scenario:
    """One cell of the scenario matrix."""

    name: str
    skew: float = 0.99            # zipfian theta (request skew)
    value_size: int = 100         # YCSB field_length (bytes per field)
    storm: Optional[StormSpec] = None
    params: Dict[str, Any] = field(default_factory=dict)

    def config(self) -> Dict[str, Any]:
        cfg: Dict[str, Any] = {"skew": self.skew,
                               "value_size": self.value_size}
        if self.storm is not None:
            cfg["storm"] = {"at": self.storm.at,
                            "duration": self.storm.duration,
                            "clients": self.storm.clients}
        cfg.update(self.params)
        return cfg


class ScenarioMatrix:
    """Cross product of skew x value-size x storm injection.

    Each axis is a sequence; :meth:`scenarios` yields every combination
    with a deterministic derived name (``zipf0.99/v100/storm32``), so a
    matrix sweep's BenchRecords are stable across runs.
    """

    def __init__(self, skews: Sequence[float] = (0.99,),
                 value_sizes: Sequence[int] = (100,),
                 storms: Sequence[Optional[StormSpec]] = (None,),
                 **params: Any):
        if not skews or not value_sizes or not storms:
            raise ValueError("every matrix axis needs at least one value")
        self.skews = list(skews)
        self.value_sizes = list(value_sizes)
        self.storms = list(storms)
        self.params = params

    def scenarios(self) -> List[Scenario]:
        out = []
        for skew, vs, storm in itertools.product(
                self.skews, self.value_sizes, self.storms):
            parts = [f"zipf{skew:g}", f"v{vs}"]
            parts.append(storm.label() if storm is not None else "calm")
            out.append(Scenario(name="/".join(parts), skew=skew,
                                value_size=vs, storm=storm,
                                params=dict(self.params)))
        return out

    def __iter__(self) -> Iterator[Scenario]:
        return iter(self.scenarios())

    def __len__(self) -> int:
        return (len(self.skews) * len(self.value_sizes)
                * len(self.storms))
