"""TJSONProtocol: a JSON wire format for the Thrift type system.

Follows the structure of Apache Thrift's TJSONProtocol (type-tagged nested
arrays/objects, base64 for binary) without chasing byte-for-byte
compatibility; the reproduction needs the protocol *layer* (Figure 2) and a
verbose-format datapoint for the serialization ablation bench.
"""

from __future__ import annotations

import base64
import json

from repro.thrift.errors import TProtocolException
from repro.thrift.protocol.base import TProtocol
from repro.thrift.ttypes import TType

__all__ = ["TJSONProtocol"]

_TYPE_NAMES = {
    TType.BOOL: "tf",
    TType.BYTE: "i8",
    TType.I16: "i16",
    TType.I32: "i32",
    TType.I64: "i64",
    TType.DOUBLE: "dbl",
    TType.STRING: "str",
    TType.STRUCT: "rec",
    TType.MAP: "map",
    TType.SET: "set",
    TType.LIST: "lst",
}
_TYPE_IDS = {v: k for k, v in _TYPE_NAMES.items()}


class TJSONProtocol(TProtocol):
    """Builds a JSON document per message; parses eagerly on read."""

    VERSION = 1

    def __init__(self, trans):
        super().__init__(trans)
        self._wstack: list = []
        self._rstack: list = []
        self._rbool: bool | None = None

    # -- write plumbing: build a python structure, dump at message end ------
    def _emit(self, value) -> None:
        if not self._wstack:
            raise TProtocolException(TProtocolException.UNKNOWN,
                                     "emit outside message")
        top = self._wstack[-1]
        if isinstance(top, list):
            top.append(value)
        else:
            raise TProtocolException(TProtocolException.UNKNOWN,
                                     "bad writer state")

    def write_message_begin(self, name: str, mtype: int, seqid: int):
        self._wstack = [[self.VERSION, name, mtype, seqid]]

    def write_message_end(self):
        doc = self._wstack.pop()
        self.trans.write(json.dumps(doc, separators=(",", ":")).encode())

    def write_struct_begin(self, name: str):
        obj: dict = {}
        if self._wstack:
            self._emit(obj)
        self._wstack.append(obj)

    def write_struct_end(self):
        top = self._wstack.pop()
        if not self._wstack:
            # bare struct serialization (no message wrapper)
            self.trans.write(json.dumps(top, separators=(",", ":")).encode())

    def write_field_begin(self, name: str, ttype: int, fid: int):
        holder: list = []
        struct_obj = self._wstack[-1]
        if not isinstance(struct_obj, dict):
            raise TProtocolException(TProtocolException.UNKNOWN,
                                     "field outside struct")
        struct_obj[str(fid)] = {_TYPE_NAMES[ttype]: holder}
        self._wstack.append(holder)

    def write_field_end(self):
        holder = self._wstack.pop()
        # unwrap single scalar for compactness
        parent_entry = None
        struct_obj = self._wstack[-1]
        for fid, entry in struct_obj.items():
            for tname, val in entry.items():
                if val is holder and len(holder) == 1:
                    entry[tname] = holder[0]

    def write_field_stop(self):
        pass

    def write_map_begin(self, ktype: int, vtype: int, size: int):
        holder = [_TYPE_NAMES[ktype], _TYPE_NAMES[vtype], size]
        self._emit(holder)
        self._wstack.append(holder)

    def write_map_end(self):
        self._wstack.pop()

    def write_list_begin(self, etype: int, size: int):
        holder = [_TYPE_NAMES[etype], size]
        self._emit(holder)
        self._wstack.append(holder)

    def write_list_end(self):
        self._wstack.pop()

    write_set_begin = write_list_begin

    def write_set_end(self):
        self._wstack.pop()

    def write_bool(self, v: bool):
        self._emit(1 if v else 0)

    def write_byte(self, v: int):
        self._emit(v)

    write_i16 = write_byte
    write_i32 = write_byte
    write_i64 = write_byte

    def write_double(self, v: float):
        self._emit(v)

    def write_string(self, v: str):
        self._emit(v)

    def write_binary(self, v: bytes):
        self._emit(base64.b64encode(v).decode("ascii"))

    # -- read plumbing: parse, then walk ------------------------------------
    def _load(self):
        data = self.trans.read(1 << 30)
        try:
            return json.loads(data)
        except json.JSONDecodeError as e:
            raise TProtocolException(TProtocolException.INVALID_DATA, str(e))

    def read_message_begin(self):
        doc = self._load()
        if not isinstance(doc, list) or doc[0] != self.VERSION:
            raise TProtocolException(TProtocolException.BAD_VERSION,
                                     "bad JSON message header")
        _v, name, mtype, seqid = doc[:4]
        self._rstack = [list(doc[4:])]
        return name, mtype, seqid

    def read_message_end(self):
        self._rstack.pop()

    def read_struct_begin(self):
        if not self._rstack:
            # bare struct deserialization
            obj = self._load()
            self._rstack.append([obj])
        top = self._rstack[-1]
        obj = top.pop(0)
        if not isinstance(obj, dict):
            raise TProtocolException(TProtocolException.INVALID_DATA,
                                     "expected struct object")
        fields = [(int(fid), entry) for fid, entry in obj.items()]
        fields.sort()
        self._rstack.append(fields)

    def read_struct_end(self):
        self._rstack.pop()

    def read_field_begin(self):
        fields = self._rstack[-1]
        if not isinstance(fields, list) or (fields and not isinstance(
                fields[0], tuple)):
            raise TProtocolException(TProtocolException.INVALID_DATA,
                                     "bad struct reader state")
        if not fields:
            return None, TType.STOP, 0
        fid, entry = fields.pop(0)
        (tname, value), = entry.items()
        ttype = _TYPE_IDS[tname]
        self._rstack.append([value] if not isinstance(value, list)
                            else list(value))
        if ttype == TType.BOOL:
            pass
        return None, ttype, fid

    def read_field_end(self):
        self._rstack.pop()

    def read_map_begin(self):
        top = self._rstack[-1]
        holder = top.pop(0) if isinstance(top[0], list) else top
        ktype = _TYPE_IDS[holder.pop(0)]
        vtype = _TYPE_IDS[holder.pop(0)]
        size = holder.pop(0)
        self._rstack.append(holder)
        return ktype, vtype, size

    def read_map_end(self):
        self._rstack.pop()

    def read_list_begin(self):
        top = self._rstack[-1]
        holder = top.pop(0) if isinstance(top[0], list) else top
        etype = _TYPE_IDS[holder.pop(0)]
        size = holder.pop(0)
        self._rstack.append(holder)
        return etype, size

    def read_list_end(self):
        self._rstack.pop()

    read_set_begin = read_list_begin
    read_set_end = read_list_end

    def _next_scalar(self):
        top = self._rstack[-1]
        return top.pop(0)

    def read_bool(self) -> bool:
        return bool(self._next_scalar())

    def read_byte(self) -> int:
        return int(self._next_scalar())

    read_i16 = read_byte
    read_i32 = read_byte
    read_i64 = read_byte

    def read_double(self) -> float:
        return float(self._next_scalar())

    def read_string(self) -> str:
        return str(self._next_scalar())

    def read_binary(self) -> bytes:
        return base64.b64decode(self._next_scalar())

    def skip(self, ttype: int) -> None:
        # JSON cannot tell str from base64 binary when skipping; just drop
        # the scalar instead of decoding it.
        if ttype == TType.STRING:
            self._next_scalar()
            return
        super().skip(ttype)
