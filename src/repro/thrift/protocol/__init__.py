"""Serialization protocols: TBinary, TCompact, TJSON."""

from repro.thrift.protocol.base import TProtocol
from repro.thrift.protocol.binary import TBinaryProtocol
from repro.thrift.protocol.compact import TCompactProtocol
from repro.thrift.protocol.json_proto import TJSONProtocol

__all__ = ["TBinaryProtocol", "TCompactProtocol", "TJSONProtocol", "TProtocol"]
