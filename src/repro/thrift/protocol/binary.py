"""TBinaryProtocol: the fixed-width big-endian wire format (strict mode)."""

from __future__ import annotations

import struct

from repro.thrift.errors import TProtocolException
from repro.thrift.protocol.base import TProtocol
from repro.thrift.ttypes import TType

__all__ = ["TBinaryProtocol"]

_I8 = struct.Struct("!b")
_I16 = struct.Struct("!h")
_I32 = struct.Struct("!i")
_I64 = struct.Struct("!q")
_DOUBLE = struct.Struct("!d")

VERSION_1 = 0x80010000
VERSION_MASK = 0xFFFF0000


class TBinaryProtocol(TProtocol):
    """Strict binary protocol, wire-compatible with Apache Thrift."""

    # -- message -----------------------------------------------------------
    def write_message_begin(self, name: str, mtype: int, seqid: int):
        # Header word is VERSION_1 | mtype, reinterpreted as a signed i32.
        header = struct.unpack("!i", struct.pack("!I", VERSION_1 | mtype))[0]
        self.write_i32(header)
        self.write_string(name)
        self.write_i32(seqid)

    def read_message_begin(self):
        sz = self.read_i32()
        if sz >= 0:
            raise TProtocolException(TProtocolException.BAD_VERSION,
                                     "missing version in message header")
        version = struct.unpack("!I", struct.pack("!i", sz))[0] & VERSION_MASK
        if version != VERSION_1:
            raise TProtocolException(TProtocolException.BAD_VERSION,
                                     f"bad version {version:#x}")
        mtype = sz & 0xFF
        name = self.read_string()
        seqid = self.read_i32()
        return name, mtype, seqid

    def write_message_end(self):
        pass

    def read_message_end(self):
        pass

    # -- struct / field ------------------------------------------------------
    def write_struct_begin(self, name: str):
        pass

    def write_struct_end(self):
        pass

    def write_field_begin(self, name: str, ttype: int, fid: int):
        self.write_byte(ttype)
        self.write_i16(fid)

    def write_field_end(self):
        pass

    def write_field_stop(self):
        self.write_byte(TType.STOP)

    def read_struct_begin(self):
        pass

    def read_struct_end(self):
        pass

    def read_field_begin(self):
        ttype = self.read_byte()
        if ttype == TType.STOP:
            return None, ttype, 0
        fid = self.read_i16()
        return None, ttype, fid

    def read_field_end(self):
        pass

    # -- containers --------------------------------------------------------------
    def write_map_begin(self, ktype: int, vtype: int, size: int):
        self.write_byte(ktype)
        self.write_byte(vtype)
        self.write_i32(size)

    def write_map_end(self):
        pass

    def read_map_begin(self):
        ktype = self.read_byte()
        vtype = self.read_byte()
        size = self.read_i32()
        self._check_size(size)
        return ktype, vtype, size

    def read_map_end(self):
        pass

    def write_list_begin(self, etype: int, size: int):
        self.write_byte(etype)
        self.write_i32(size)

    def write_list_end(self):
        pass

    def read_list_begin(self):
        etype = self.read_byte()
        size = self.read_i32()
        self._check_size(size)
        return etype, size

    def read_list_end(self):
        pass

    write_set_begin = write_list_begin
    write_set_end = write_list_end
    read_set_begin = read_list_begin
    read_set_end = read_list_end

    # -- scalars --------------------------------------------------------------------
    def write_bool(self, v: bool):
        self.write_byte(1 if v else 0)

    def write_byte(self, v: int):
        self.trans.write(_I8.pack(v))

    def write_i16(self, v: int):
        self.trans.write(_I16.pack(v))

    def write_i32(self, v: int):
        self.trans.write(_I32.pack(v))

    def write_i64(self, v: int):
        self.trans.write(_I64.pack(v))

    def write_double(self, v: float):
        self.trans.write(_DOUBLE.pack(v))

    def write_string(self, v: str):
        self.write_binary(v.encode("utf-8"))

    def write_binary(self, v: bytes):
        self.write_i32(len(v))
        self.trans.write(v)

    def read_bool(self) -> bool:
        return self.read_byte() != 0

    def read_byte(self) -> int:
        return _I8.unpack(self.trans.read_all(1))[0]

    def read_i16(self) -> int:
        return _I16.unpack(self.trans.read_all(2))[0]

    def read_i32(self) -> int:
        return _I32.unpack(self.trans.read_all(4))[0]

    def read_i64(self) -> int:
        return _I64.unpack(self.trans.read_all(8))[0]

    def read_double(self) -> float:
        return _DOUBLE.unpack(self.trans.read_all(8))[0]

    def read_string(self) -> str:
        return self.read_binary().decode("utf-8")

    def read_binary(self) -> bytes:
        size = self.read_i32()
        self._check_size(size)
        return self.trans.read_all(size)

    @staticmethod
    def _check_size(size: int):
        if size < 0:
            raise TProtocolException(TProtocolException.NEGATIVE_SIZE,
                                     f"negative size {size}")
