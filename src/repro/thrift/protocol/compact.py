"""TCompactProtocol: varint/zigzag encoding with delta field ids.

Wire format follows the Apache Thrift compact protocol specification:
single-byte field headers where possible, ULEB128 varints, zigzag for
signed integers, little-endian doubles, and bool values folded into the
field header.
"""

from __future__ import annotations

import struct

from repro.thrift.errors import TProtocolException
from repro.thrift.protocol.base import TProtocol
from repro.thrift.ttypes import TType

__all__ = ["TCompactProtocol"]

PROTOCOL_ID = 0x82
VERSION = 1

# Compact wire type ids.
CT_STOP = 0x00
CT_BOOL_TRUE = 0x01
CT_BOOL_FALSE = 0x02
CT_BYTE = 0x03
CT_I16 = 0x04
CT_I32 = 0x05
CT_I64 = 0x06
CT_DOUBLE = 0x07
CT_BINARY = 0x08
CT_LIST = 0x09
CT_SET = 0x0A
CT_MAP = 0x0B
CT_STRUCT = 0x0C

_TO_COMPACT = {
    TType.STOP: CT_STOP,
    TType.BOOL: CT_BOOL_TRUE,
    TType.BYTE: CT_BYTE,
    TType.I16: CT_I16,
    TType.I32: CT_I32,
    TType.I64: CT_I64,
    TType.DOUBLE: CT_DOUBLE,
    TType.STRING: CT_BINARY,
    TType.LIST: CT_LIST,
    TType.SET: CT_SET,
    TType.MAP: CT_MAP,
    TType.STRUCT: CT_STRUCT,
}
_FROM_COMPACT = {
    CT_STOP: TType.STOP,
    CT_BOOL_TRUE: TType.BOOL,
    CT_BOOL_FALSE: TType.BOOL,
    CT_BYTE: TType.BYTE,
    CT_I16: TType.I16,
    CT_I32: TType.I32,
    CT_I64: TType.I64,
    CT_DOUBLE: TType.DOUBLE,
    CT_BINARY: TType.STRING,
    CT_LIST: TType.LIST,
    CT_SET: TType.SET,
    CT_MAP: TType.MAP,
    CT_STRUCT: TType.STRUCT,
}

_DOUBLE_LE = struct.Struct("<d")


def zigzag(v: int, bits: int) -> int:
    return (v << 1) ^ (v >> (bits - 1))


def unzigzag(v: int) -> int:
    return (v >> 1) ^ -(v & 1)


class TCompactProtocol(TProtocol):
    def __init__(self, trans):
        super().__init__(trans)
        self._field_stack: list[int] = []
        self._last_fid = 0
        self._bool_fid: int | None = None       # pending bool field write
        self._bool_value: bool | None = None    # pending bool field read

    # -- varint helpers --------------------------------------------------------
    def _write_varint(self, v: int) -> None:
        out = bytearray()
        while True:
            if (v & ~0x7F) == 0:
                out.append(v)
                break
            out.append((v & 0x7F) | 0x80)
            v >>= 7
        self.trans.write(bytes(out))

    def _read_varint(self) -> int:
        result = 0
        shift = 0
        while True:
            b = self.trans.read_all(1)[0]
            result |= (b & 0x7F) << shift
            if not b & 0x80:
                return result
            shift += 7
            if shift > 70:
                raise TProtocolException(TProtocolException.INVALID_DATA,
                                         "varint too long")

    # -- message --------------------------------------------------------------
    def write_message_begin(self, name: str, mtype: int, seqid: int):
        self.trans.write(bytes([PROTOCOL_ID,
                                (VERSION & 0x1F) | ((mtype & 0x07) << 5)]))
        self._write_varint(seqid)
        self.write_string(name)

    def read_message_begin(self):
        proto_id = self.trans.read_all(1)[0]
        if proto_id != PROTOCOL_ID:
            raise TProtocolException(TProtocolException.BAD_VERSION,
                                     f"bad compact protocol id {proto_id:#x}")
        vt = self.trans.read_all(1)[0]
        if vt & 0x1F != VERSION:
            raise TProtocolException(TProtocolException.BAD_VERSION,
                                     f"bad compact version {vt & 0x1F}")
        mtype = (vt >> 5) & 0x07
        seqid = self._read_varint()
        name = self.read_string()
        return name, mtype, seqid

    def write_message_end(self):
        pass

    def read_message_end(self):
        pass

    # -- struct / field ----------------------------------------------------------
    def write_struct_begin(self, name: str):
        self._field_stack.append(self._last_fid)
        self._last_fid = 0

    def write_struct_end(self):
        self._last_fid = self._field_stack.pop()

    def write_field_begin(self, name: str, ttype: int, fid: int):
        if ttype == TType.BOOL:
            self._bool_fid = fid   # header written by write_bool
            return
        self._write_field_header(_TO_COMPACT[ttype], fid)

    def _write_field_header(self, ct: int, fid: int) -> None:
        delta = fid - self._last_fid
        if 0 < delta <= 15:
            self.trans.write(bytes([(delta << 4) | ct]))
        else:
            self.trans.write(bytes([ct]))
            self._write_varint(zigzag(fid, 16))
        self._last_fid = fid

    def write_field_end(self):
        pass

    def write_field_stop(self):
        self.trans.write(b"\x00")

    def read_struct_begin(self):
        self._field_stack.append(self._last_fid)
        self._last_fid = 0

    def read_struct_end(self):
        self._last_fid = self._field_stack.pop()

    def read_field_begin(self):
        b = self.trans.read_all(1)[0]
        if b == CT_STOP:
            return None, TType.STOP, 0
        ct = b & 0x0F
        delta = (b >> 4) & 0x0F
        if delta:
            fid = self._last_fid + delta
        else:
            fid = unzigzag(self._read_varint())
        self._last_fid = fid
        if ct in (CT_BOOL_TRUE, CT_BOOL_FALSE):
            self._bool_value = ct == CT_BOOL_TRUE
        return None, _FROM_COMPACT[ct], fid

    def read_field_end(self):
        pass

    # -- containers ------------------------------------------------------------------
    def write_map_begin(self, ktype: int, vtype: int, size: int):
        if size == 0:
            self.trans.write(b"\x00")
            return
        self._write_varint(size)
        self.trans.write(bytes([(_TO_COMPACT[ktype] << 4)
                                | _TO_COMPACT[vtype]]))

    def write_map_end(self):
        pass

    def read_map_begin(self):
        size = self._read_varint()
        self._check_size(size)
        if size == 0:
            return TType.STOP, TType.STOP, 0
        kv = self.trans.read_all(1)[0]
        return _FROM_COMPACT[kv >> 4], _FROM_COMPACT[kv & 0x0F], size

    def read_map_end(self):
        pass

    def write_list_begin(self, etype: int, size: int):
        ct = _TO_COMPACT[etype]
        if size <= 14:
            self.trans.write(bytes([(size << 4) | ct]))
        else:
            self.trans.write(bytes([0xF0 | ct]))
            self._write_varint(size)

    def write_list_end(self):
        pass

    def read_list_begin(self):
        b = self.trans.read_all(1)[0]
        size = (b >> 4) & 0x0F
        if size == 15:
            size = self._read_varint()
        self._check_size(size)
        return _FROM_COMPACT[b & 0x0F], size

    def read_list_end(self):
        pass

    write_set_begin = write_list_begin
    write_set_end = write_list_end
    read_set_begin = read_list_begin
    read_set_end = read_list_end

    # -- scalars ------------------------------------------------------------------------
    def write_bool(self, v: bool):
        ct = CT_BOOL_TRUE if v else CT_BOOL_FALSE
        if self._bool_fid is not None:
            self._write_field_header(ct, self._bool_fid)
            self._bool_fid = None
        else:
            self.trans.write(bytes([ct]))  # bare bool inside a container

    def read_bool(self) -> bool:
        if self._bool_value is not None:
            v = self._bool_value
            self._bool_value = None
            return v
        return self.trans.read_all(1)[0] == CT_BOOL_TRUE

    def write_byte(self, v: int):
        self.trans.write(struct.pack("!b", v))

    def read_byte(self) -> int:
        return struct.unpack("!b", self.trans.read_all(1))[0]

    def write_i16(self, v: int):
        self._write_varint(zigzag(v, 16))

    def read_i16(self) -> int:
        return unzigzag(self._read_varint())

    def write_i32(self, v: int):
        self._write_varint(zigzag(v, 32))

    def read_i32(self) -> int:
        return unzigzag(self._read_varint())

    def write_i64(self, v: int):
        self._write_varint(zigzag(v, 64))

    def read_i64(self) -> int:
        return unzigzag(self._read_varint())

    def write_double(self, v: float):
        self.trans.write(_DOUBLE_LE.pack(v))

    def read_double(self) -> float:
        return _DOUBLE_LE.unpack(self.trans.read_all(8))[0]

    def write_string(self, v: str):
        self.write_binary(v.encode("utf-8"))

    def read_string(self) -> str:
        return self.read_binary().decode("utf-8")

    def write_binary(self, v: bytes):
        self._write_varint(len(v))
        self.trans.write(v)

    def read_binary(self) -> bytes:
        size = self._read_varint()
        self._check_size(size)
        return self.trans.read_all(size)

    @staticmethod
    def _check_size(size: int):
        if size < 0:
            raise TProtocolException(TProtocolException.NEGATIVE_SIZE,
                                     f"negative size {size}")
