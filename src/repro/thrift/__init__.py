"""A from-scratch Apache Thrift-compatible RPC stack.

This substitutes for the C++ Apache Thrift library the paper extends.  It
mirrors Thrift's layering (Figure 2 of the paper):

* **protocol** -- TBinary / TCompact / TJSON serialization of the Thrift
  type system;
* **transport** -- TMemoryBuffer, TFramedTransport, TBufferedTransport, and
  TSocket over the simulated kernel-TCP (IPoIB) stack;
* **server** -- TSimpleServer, TThreadedServer, TThreadPoolServer;
* **processor** -- dispatch glue used by IDL-generated code.

Blocking calls follow the repository-wide coroutine convention: anything
that can consume simulated time (``flush``, ``ready``, ``accept``, client
method stubs) is a generator driven with ``yield from``.

The HatRPC layer (:mod:`repro.core`) plugs in at the transport level with
TRdma, exactly as the paper describes.
"""

from repro.thrift.ttypes import TMessageType, TType
from repro.thrift.errors import (
    TApplicationException,
    TProtocolException,
    TTransportException,
)
from repro.thrift.transport import (
    TBufferedTransport,
    TFramedTransport,
    TMemoryBuffer,
    TServerSocket,
    TSocket,
    TTransport,
)
from repro.thrift.protocol import (
    TBinaryProtocol,
    TCompactProtocol,
    TJSONProtocol,
    TProtocol,
)
from repro.thrift.processor import TClient, TMultiplexedProcessor, TProcessor
from repro.thrift.server import (
    TServer,
    TSimpleServer,
    TThreadPoolServer,
    TThreadedServer,
)

__all__ = [
    "TApplicationException",
    "TBinaryProtocol",
    "TBufferedTransport",
    "TClient",
    "TCompactProtocol",
    "TFramedTransport",
    "TJSONProtocol",
    "TMemoryBuffer",
    "TMessageType",
    "TMultiplexedProcessor",
    "TProcessor",
    "TProtocol",
    "TProtocolException",
    "TServer",
    "TServerSocket",
    "TSimpleServer",
    "TSocket",
    "TThreadPoolServer",
    "TThreadedServer",
    "TTransport",
    "TTransportException",
    "TType",
]
