"""The Thrift type system constants (wire-compatible values)."""

from __future__ import annotations

__all__ = ["TMessageType", "TType"]


class TType:
    """Thrift field type ids, matching Apache Thrift's wire values."""

    STOP = 0
    VOID = 1
    BOOL = 2
    BYTE = 3
    I08 = 3
    DOUBLE = 4
    I16 = 6
    I32 = 8
    I64 = 10
    STRING = 11
    BINARY = 11  # same wire type; distinction is codegen-level
    STRUCT = 12
    MAP = 13
    SET = 14
    LIST = 15

    _NAMES = {
        0: "STOP", 1: "VOID", 2: "BOOL", 3: "BYTE", 4: "DOUBLE", 6: "I16",
        8: "I32", 10: "I64", 11: "STRING", 12: "STRUCT", 13: "MAP",
        14: "SET", 15: "LIST",
    }

    @classmethod
    def name_of(cls, ttype: int) -> str:
        return cls._NAMES.get(ttype, f"UNKNOWN({ttype})")


class TMessageType:
    CALL = 1
    REPLY = 2
    EXCEPTION = 3
    ONEWAY = 4
