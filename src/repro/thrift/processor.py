"""Processor and client plumbing used by IDL-generated code."""

from __future__ import annotations

import inspect
from typing import Callable, Dict

from repro.thrift.errors import TApplicationException
from repro.thrift.protocol.base import TProtocol
from repro.thrift.ttypes import TMessageType, TType

__all__ = ["TClient", "TMultiplexedProcessor", "TMultiplexedProtocol",
           "TProcessor"]


class TProcessor:
    """One service's dispatch table.

    Generated subclasses populate ``self._process_map`` with per-method
    coroutines ``fn(seqid, iprot, oprot) -> bool`` returning whether a reply
    was written (oneway methods return False).
    """

    def __init__(self, handler):
        self._handler = handler
        self._process_map: Dict[str, Callable] = {}
        # Trace context of the request currently entering process() --
        # consumed exactly once by _invoke().  Safe despite the processor
        # being shared across interleaved connections: there is no sim
        # yield between process() entry and _invoke() entry (argument
        # deserialization is synchronous memory-buffer reads).
        self._trace_ctx = None

    def process(self, iprot: TProtocol, oprot: TProtocol):
        """Coroutine: handle one buffered inbound message.

        Returns True when a reply message was written (and must be flushed).
        """
        self._trace_ctx = getattr(iprot.trans, "trace_ctx", None)
        name, mtype, seqid = iprot.read_message_begin()
        fn = self._process_map.get(name)
        if fn is None:
            iprot.skip(TType.STRUCT)
            iprot.read_message_end()
            exc = TApplicationException(TApplicationException.UNKNOWN_METHOD,
                                        f"unknown method {name!r}")
            oprot.write_message_begin(name, TMessageType.EXCEPTION, seqid)
            exc.write(oprot)
            oprot.write_message_end()
            return True
        return (yield from fn(seqid, iprot, oprot))

    def _invoke(self, method_name: str, *args):
        """Coroutine: call the handler method (plain or generator)."""
        ctx = self._trace_ctx
        self._trace_ctx = None
        method = getattr(self._handler, method_name)
        if ctx is not None:
            # Open-stage so backend spans recorded inside the handler nest
            # under it; ctx stays valid across yields because it was
            # captured into a local before the first one.
            ctx.open_stage("handler", ctx.now(), method=method_name)
        if inspect.isgeneratorfunction(method):
            result = yield from method(*args)
        else:
            result = method(*args)
        if ctx is not None:
            ctx.close_stage(ctx.now())
        return result


class TMultiplexedProcessor(TProcessor):
    """Routes ``service:method`` calls to registered processors."""

    SEPARATOR = ":"

    def __init__(self):
        self._processors: Dict[str, TProcessor] = {}

    def register(self, service_name: str, processor: TProcessor) -> None:
        if service_name in self._processors:
            raise ValueError(f"service {service_name!r} already registered")
        self._processors[service_name] = processor

    def process(self, iprot: TProtocol, oprot: TProtocol):
        name, mtype, seqid = iprot.read_message_begin()
        if self.SEPARATOR not in name:
            exc = TApplicationException(
                TApplicationException.INVALID_MESSAGE_TYPE,
                f"multiplexed call without service prefix: {name!r}")
            iprot.skip(TType.STRUCT)
            iprot.read_message_end()
            oprot.write_message_begin(name, TMessageType.EXCEPTION, seqid)
            exc.write(oprot)
            oprot.write_message_end()
            return True
        service, method = name.split(self.SEPARATOR, 1)
        proc = self._processors.get(service)
        if proc is None:
            iprot.skip(TType.STRUCT)
            iprot.read_message_end()
            exc = TApplicationException(TApplicationException.UNKNOWN_METHOD,
                                        f"unknown service {service!r}")
            oprot.write_message_begin(name, TMessageType.EXCEPTION, seqid)
            exc.write(oprot)
            oprot.write_message_end()
            return True
        fn = proc._process_map.get(method)
        if fn is None:
            iprot.skip(TType.STRUCT)
            iprot.read_message_end()
            exc = TApplicationException(TApplicationException.UNKNOWN_METHOD,
                                        f"unknown method {method!r}")
            oprot.write_message_begin(name, TMessageType.EXCEPTION, seqid)
            exc.write(oprot)
            oprot.write_message_end()
            return True
        # The child processor's process() is bypassed, so hand it the trace
        # context directly (same synchronous window as TProcessor.process).
        proc._trace_ctx = getattr(iprot.trans, "trace_ctx", None)
        return (yield from fn(seqid, iprot, oprot))


class TMultiplexedProtocol:
    """Client-side wrapper prefixing the service name onto method names."""

    def __init__(self, protocol: TProtocol, service_name: str):
        self._proto = protocol
        self.service_name = service_name

    def write_message_begin(self, name: str, mtype: int, seqid: int):
        self._proto.write_message_begin(
            f"{self.service_name}{TMultiplexedProcessor.SEPARATOR}{name}",
            mtype, seqid)

    def __getattr__(self, item):
        return getattr(self._proto, item)


class TClient:
    """Base for generated clients: seqid bookkeeping + send/recv framing."""

    def __init__(self, iprot: TProtocol, oprot: TProtocol | None = None):
        self._iprot = iprot
        self._oprot = oprot or iprot
        self._seqid = 0

    def _send(self, name: str, args, mtype: int = TMessageType.CALL):
        """Coroutine: serialize and flush one call message."""
        self._seqid += 1
        self._oprot.write_message_begin(name, mtype, self._seqid)
        args.write(self._oprot)
        self._oprot.write_message_end()
        yield from self._oprot.trans.flush()

    def _recv(self, name: str, result):
        """Coroutine: await and deserialize the reply into ``result``."""
        yield from self._iprot.trans.ready()
        rname, mtype, seqid = self._iprot.read_message_begin()
        if mtype == TMessageType.EXCEPTION:
            exc = TApplicationException()
            exc.read(self._iprot)
            self._iprot.read_message_end()
            raise exc
        if seqid != self._seqid:
            raise TApplicationException(
                TApplicationException.BAD_SEQUENCE_ID,
                f"expected seqid {self._seqid}, got {seqid}")
        if rname != name and rname.split(TMultiplexedProcessor.SEPARATOR)[-1] != name:
            raise TApplicationException(
                TApplicationException.WRONG_METHOD_NAME,
                f"expected reply to {name!r}, got {rname!r}")
        result.read(self._iprot)
        self._iprot.read_message_end()
        return result
