"""Thrift transports over the simulated network.

Interface contract (repository coroutine convention):

* ``write(data)`` buffers bytes for the current outbound message -- plain
  call, no simulated time;
* ``flush()`` -- coroutine -- pushes the buffered message down the stack;
* ``ready()`` -- coroutine -- blocks until the next inbound message is
  buffered locally;
* ``read(n)`` / ``read_all(n)`` -- plain calls against the buffered inbound
  message (serializers are synchronous once a message has landed).

Message-boundary framing is therefore part of the transport, as in Apache
Thrift's non-blocking servers (TFramedTransport is mandatory there too).
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.netfab.tcp import TcpConn, TcpError, TcpListener
from repro.sim.cluster import Node
from repro.thrift.errors import TTransportException

__all__ = [
    "TBufferedTransport",
    "TFramedTransport",
    "TMemoryBuffer",
    "TServerSocket",
    "TSocket",
    "TTransport",
]


class TTransport:
    """Abstract transport."""

    def is_open(self) -> bool:
        return True

    def open(self):
        """Coroutine: establish the transport."""
        return
        yield  # pragma: no cover

    def close(self) -> None:
        pass

    def write(self, data: bytes) -> None:
        raise NotImplementedError

    def flush(self):
        """Coroutine: deliver the buffered outbound message."""
        raise NotImplementedError

    def ready(self):
        """Coroutine: buffer the next inbound message."""
        raise NotImplementedError

    def read(self, n: int) -> bytes:
        raise NotImplementedError

    def peek(self, n: int) -> bytes:
        """Up to ``n`` buffered inbound bytes WITHOUT consuming them
        (``b""`` where the transport cannot look ahead).  Used to detect
        the optional trace-context envelope ahead of a Thrift message."""
        return b""

    def read_all(self, n: int) -> bytes:
        out = self.read(n)
        if len(out) < n:
            raise TTransportException(
                TTransportException.END_OF_FILE,
                f"wanted {n} bytes, transport had {len(out)}")
        return out


class TMemoryBuffer(TTransport):
    """In-memory transport for (de)serialization and tests."""

    def __init__(self, value: bytes = b""):
        self._wbuf = bytearray()
        self._rbuf = memoryview(bytes(value))
        self._rpos = 0

    def write(self, data: bytes) -> None:
        self._wbuf += data

    def flush(self):
        return
        yield  # pragma: no cover

    def ready(self):
        return
        yield  # pragma: no cover

    def read(self, n: int) -> bytes:
        out = bytes(self._rbuf[self._rpos:self._rpos + n])
        self._rpos += len(out)
        return out

    def peek(self, n: int) -> bytes:
        return bytes(self._rbuf[self._rpos:self._rpos + n])

    def getvalue(self) -> bytes:
        return bytes(self._wbuf)

    def reset_read(self, value: bytes) -> None:
        self._rbuf = memoryview(bytes(value))
        self._rpos = 0


class TSocket(TTransport):
    """Client socket over the simulated kernel TCP (IPoIB) stack.

    Byte-stream only: wrap it in TFramedTransport (or TBufferedTransport for
    write batching) for message semantics, as real non-blocking Thrift does.
    """

    def __init__(self, node: Node, remote: Node, port: int,
                 conn: Optional[TcpConn] = None):
        self.node = node
        self.remote = remote
        self.port = port
        self.conn = conn

    def is_open(self) -> bool:
        return self.conn is not None and not self.conn.closed

    def open(self):
        if self.is_open():
            raise TTransportException(TTransportException.ALREADY_OPEN,
                                      "socket already open")
        try:
            self.conn = yield from self.node.tcp.connect(self.remote, self.port)
        except TcpError as e:
            raise TTransportException(TTransportException.NOT_OPEN, str(e))

    def close(self) -> None:
        if self.conn is not None:
            self.conn.close()
            self.conn = None

    # Raw stream coroutines used by the framing layers.
    def send(self, data: bytes):
        if not self.is_open():
            raise TTransportException(TTransportException.NOT_OPEN,
                                      "send on closed socket")
        try:
            yield from self.conn.send(data)
        except TcpError as e:
            raise TTransportException(TTransportException.NOT_OPEN, str(e))

    def recv_exact(self, n: int):
        if not self.is_open():
            raise TTransportException(TTransportException.NOT_OPEN,
                                      "recv on closed socket")
        try:
            return (yield from self.conn.recv_exact(n))
        except TcpError as e:
            raise TTransportException(TTransportException.END_OF_FILE, str(e))


class TFramedTransport(TTransport):
    """Length-prefixed framing over a byte-stream transport (TSocket)."""

    _LEN = struct.Struct("!I")
    MAX_FRAME = 64 * 1024 * 1024

    def __init__(self, inner: TSocket):
        self.inner = inner
        self._wbuf = bytearray()
        self._rbuf = b""
        self._rpos = 0

    def is_open(self) -> bool:
        return self.inner.is_open()

    def open(self):
        yield from self.inner.open()

    def close(self) -> None:
        self.inner.close()

    def write(self, data: bytes) -> None:
        self._wbuf += data

    def flush(self):
        frame = bytes(self._wbuf)
        self._wbuf.clear()
        yield from self.inner.send(self._LEN.pack(len(frame)) + frame)

    def ready(self):
        hdr = yield from self.inner.recv_exact(4)
        (length,) = self._LEN.unpack(hdr)
        if length > self.MAX_FRAME:
            raise TTransportException(TTransportException.UNKNOWN,
                                      f"frame of {length} bytes exceeds limit")
        self._rbuf = yield from self.inner.recv_exact(length)
        self._rpos = 0

    def read(self, n: int) -> bytes:
        out = self._rbuf[self._rpos:self._rpos + n]
        self._rpos += len(out)
        return out

    def peek(self, n: int) -> bytes:
        return bytes(self._rbuf[self._rpos:self._rpos + n])


class TBufferedTransport(TFramedTransport):
    """Write-coalescing transport without frame headers.

    Reads require the peer to send whole messages per flush (true for all
    RPC flows in this repository); each ``ready()`` pulls whatever the next
    flush delivered.  Provided for API parity with Apache Thrift; framed is
    what the servers use.
    """

    def flush(self):
        data = bytes(self._wbuf)
        self._wbuf.clear()
        yield from self.inner.send(data)

    def ready(self):
        chunk = yield from self.inner.recv_exact(1)
        # Drain whatever else is already buffered without blocking again.
        more = self.inner.conn._rx
        rest = bytes(more)
        del more[:]
        self._rbuf = chunk + rest
        self._rpos = 0


class TServerSocket:
    """Listening socket; ``accept()`` yields a connected TSocket."""

    def __init__(self, node: Node, port: int):
        self.node = node
        self.port = port
        self._listener: Optional[TcpListener] = None

    def listen(self) -> "TServerSocket":
        self._listener = self.node.tcp.listen(self.port)
        return self

    def accept(self):
        """Coroutine: next inbound connection as a TSocket."""
        if self._listener is None:
            raise TTransportException(TTransportException.NOT_OPEN,
                                      "server socket not listening")
        conn = yield self._listener.accept()
        return TSocket(self.node, conn.peer_stack.node, self.port, conn=conn)

    def close(self) -> None:
        if self._listener is not None:
            self._listener.close()
            self._listener = None
