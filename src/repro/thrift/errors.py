"""Thrift exception hierarchy (mirrors Apache Thrift's)."""

from __future__ import annotations

__all__ = [
    "TApplicationException",
    "TException",
    "TProtocolException",
    "TRejectedException",
    "TTransportException",
    "transport_exception_from_wc",
]


class TException(Exception):
    """Base class for all Thrift exceptions."""

    def __init__(self, message: str = ""):
        super().__init__(message)
        self.message = message


class TTransportException(TException):
    UNKNOWN = 0
    NOT_OPEN = 1
    ALREADY_OPEN = 2
    TIMED_OUT = 3
    END_OF_FILE = 4
    REJECTED = 5

    def __init__(self, type: int = UNKNOWN, message: str = ""):
        super().__init__(message)
        self.type = type


class TRejectedException(TTransportException):
    """Server admission control refused the request *before* dispatch.

    Distinct from TIMED_OUT in every way that matters to a caller: the
    server is alive, the request provably never executed (safe to re-send
    even when non-idempotent), and the server named the earliest useful
    retry time -- ``retry_after`` seconds of backoff.
    """

    def __init__(self, retry_after: float = 0.0, message: str = ""):
        super().__init__(
            self.REJECTED,
            message or f"server rejected under overload "
                       f"(retry after {retry_after * 1e6:.0f}us)")
        self.retry_after = retry_after


#: verbs WCStatus.value -> TTransportException type.  RNR exhaustion and
#: transport-retry exhaustion are *time* failures (the peer or link stopped
#: responding); a flushed WR means the QP was already dead (never open from
#: the transport's point of view); a local-length error truncates the stream.
_WC_TO_TTYPE = {
    "rnr_retry_exc": TTransportException.TIMED_OUT,
    "retry_exc": TTransportException.TIMED_OUT,
    "wr_flush_err": TTransportException.NOT_OPEN,
    "loc_len_err": TTransportException.END_OF_FILE,
}


def transport_exception_from_wc(status) -> TTransportException:
    """Map a verbs work-completion status onto the Thrift error taxonomy.

    Duck-typed on ``status.value`` so this module stays free of a verbs
    dependency (the thrift package must also run over plain TCP).
    """
    value = getattr(status, "value", str(status))
    ttype = _WC_TO_TTYPE.get(value, TTransportException.UNKNOWN)
    return TTransportException(ttype, f"work completion failed: {value}")


class TProtocolException(TException):
    UNKNOWN = 0
    INVALID_DATA = 1
    NEGATIVE_SIZE = 2
    SIZE_LIMIT = 3
    BAD_VERSION = 4

    def __init__(self, type: int = UNKNOWN, message: str = ""):
        super().__init__(message)
        self.type = type


class TApplicationException(TException):
    """Server-side failure reported back to the caller."""

    UNKNOWN = 0
    UNKNOWN_METHOD = 1
    INVALID_MESSAGE_TYPE = 2
    WRONG_METHOD_NAME = 3
    BAD_SEQUENCE_ID = 4
    MISSING_RESULT = 5
    INTERNAL_ERROR = 6
    PROTOCOL_ERROR = 7

    def __init__(self, type: int = UNKNOWN, message: str = ""):
        super().__init__(message)
        self.type = type

    def read(self, iprot) -> None:
        from repro.thrift.ttypes import TType
        iprot.read_struct_begin()
        while True:
            _name, ftype, fid = iprot.read_field_begin()
            if ftype == TType.STOP:
                break
            if fid == 1 and ftype == TType.STRING:
                self.message = iprot.read_string()
            elif fid == 2 and ftype == TType.I32:
                self.type = iprot.read_i32()
            else:
                iprot.skip(ftype)
            iprot.read_field_end()
        iprot.read_struct_end()
        self.args = (self.message,)  # so str(exc) reflects the wire message

    def write(self, oprot) -> None:
        from repro.thrift.ttypes import TType
        oprot.write_struct_begin("TApplicationException")
        oprot.write_field_begin("message", TType.STRING, 1)
        oprot.write_string(self.message or "")
        oprot.write_field_end()
        oprot.write_field_begin("type", TType.I32, 2)
        oprot.write_i32(self.type)
        oprot.write_field_end()
        oprot.write_field_stop()
        oprot.write_struct_end()
