"""Thrift servers: simple, threaded, and thread-pool variants.

"Threads" are simulator processes (the coroutine convention); the thread
pool maps onto the node's CPU scheduler exactly the way OS threads map onto
cores in the real Apache Thrift servers the paper benchmarks.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro import obs
from repro.core.overload import pack_rej, peek_fn_name
from repro.obs import trace as obstrace
from repro.sim.core import Simulator
from repro.sim.sync import Store
from repro.thrift.errors import TTransportException
from repro.thrift.processor import TProcessor
from repro.thrift.protocol.binary import TBinaryProtocol
from repro.thrift.transport import TFramedTransport

__all__ = ["TServer", "TSimpleServer", "TThreadPoolServer", "TThreadedServer"]


class TServer:
    """Base server: accept loop + per-connection message loop."""

    def __init__(self, processor: TProcessor, server_transport,
                 protocol_factory: Callable = TBinaryProtocol,
                 transport_factory: Callable = TFramedTransport,
                 admission=None, priorities=None):
        self.processor = processor
        self.server_transport = server_transport
        self.protocol_factory = protocol_factory
        self.transport_factory = transport_factory
        #: optional AdmissionGate + {fn: priority} map: requests are gated
        #: BEFORE dispatch, and a refusal answers with the typed rejection
        #: frame (never a silent drop or a timeout).
        self.admission = admission
        self.priorities = dict(priorities or {})
        self.sim: Simulator = server_transport.node.sim
        self.connections = 0
        self.requests = 0
        self._stopped = False
        # Instruments captured once (None = metrics disabled).
        reg = obs.current()
        if reg is not None:
            self._m_requests = reg.counter("thrift.requests")
            self._m_connections = reg.counter("thrift.connections")
        else:
            self._m_requests = None
            self._m_connections = None
        self._trc = obstrace.current()

    def serve(self) -> "TServer":
        """Start the accept loop (non-blocking; returns immediately)."""
        self.server_transport.listen()
        self.sim.process(self._accept_loop(), name="thrift-accept")
        return self

    def stop(self) -> None:
        self._stopped = True
        self.server_transport.close()

    def _accept_loop(self):
        raise NotImplementedError

    def _handle_connection(self, trans):
        """Coroutine: serve one connection until EOF."""
        prot = self.protocol_factory(trans)
        node_name = self.server_transport.node.name
        if self._m_connections is not None:
            self._m_connections.inc()
        while not self._stopped:
            t_poll = self.sim.now
            try:
                yield from trans.ready()
            except TTransportException:
                trans.close()
                return
            # Traced requests lead with the context envelope inside the
            # frame; strip it and open the server span.  trans.trace_ctx is
            # assigned unconditionally so a previous request's context
            # never leaks onto an untraced one.
            srv = None
            proc = prev_ctx = None
            if self._trc is not None:
                head = trans.peek(obstrace.ENVELOPE_BYTES)
                ctx, rest = obstrace.split_envelope(head)
                if ctx is not None:
                    trans.read(obstrace.ENVELOPE_BYTES)
                    srv = self._trc.server_call(
                        ctx, "server", node_name, lambda: self.sim.now,
                        start=t_poll, attrs={"protocol": "tcp"})
                    srv.stage("poll", t_poll, self.sim.now)
                    proc = self.sim.active_process
                    if proc is not None:
                        prev_ctx = proc.trace_ctx
                        proc.trace_ctx = srv
            trans.trace_ctx = srv
            admitted = False
            if self.admission is not None:
                priority = self.priorities.get(
                    peek_fn_name(trans.peek(128)), "normal")
                retry_after = self.admission.admit(priority)
                if retry_after is not None:
                    # Rejected before dispatch: the unread frame dies here
                    # (the next ready() replaces the buffer) and the typed
                    # rejection frame goes back in its place.
                    if srv is not None:
                        srv.stage("admission", self.sim.now, self.sim.now,
                                  admitted=False, priority=priority)
                        srv.finish(self.sim.now, status="rejected")
                    if proc is not None:
                        proc.trace_ctx = prev_ctx
                    trans.write(pack_rej(retry_after))
                    yield from trans.flush()
                    continue
                admitted = True
            try:
                if srv is not None:
                    srv.open_stage("dispatch", self.sim.now)
                replied = yield from self.processor.process(prot, prot)
                if srv is not None:
                    srv.close_stage(self.sim.now)
                t_reply = self.sim.now
                if replied:
                    yield from trans.flush()
                if srv is not None:
                    srv.stage("reply", t_reply, self.sim.now)
                    srv.finish(self.sim.now)
            finally:
                if admitted:
                    self.admission.release()
                if proc is not None:
                    proc.trace_ctx = prev_ctx
            self.requests += 1
            if self._m_requests is not None:
                self._m_requests.inc()


class TSimpleServer(TServer):
    """Serves one connection at a time (useful for tests)."""

    def _accept_loop(self):
        while not self._stopped:
            sock = yield from self.server_transport.accept()
            self.connections += 1
            yield from self._handle_connection(self.transport_factory(sock))


class TThreadedServer(TServer):
    """One simulator process per connection (thread-per-connection)."""

    def _accept_loop(self):
        while not self._stopped:
            sock = yield from self.server_transport.accept()
            self.connections += 1
            self.sim.process(
                self._handle_connection(self.transport_factory(sock)),
                name=f"thrift-conn-{self.connections}")


class TThreadPoolServer(TServer):
    """A fixed pool of worker processes draining an accept queue."""

    def __init__(self, processor, server_transport,
                 protocol_factory: Callable = TBinaryProtocol,
                 transport_factory: Callable = TFramedTransport,
                 workers: int = 8):
        super().__init__(processor, server_transport, protocol_factory,
                         transport_factory)
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self._queue: Optional[Store] = None

    def serve(self) -> "TThreadPoolServer":
        self._queue = Store(self.sim)
        for i in range(self.workers):
            self.sim.process(self._worker(), name=f"thrift-worker-{i}")
        return super().serve()

    def _accept_loop(self):
        while not self._stopped:
            sock = yield from self.server_transport.accept()
            self.connections += 1
            self._queue.put(sock)

    def _worker(self):
        while not self._stopped:
            sock = yield self._queue.get()
            yield from self._handle_connection(self.transport_factory(sock))
