"""Cursors: ordered traversal over a transaction's snapshot."""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from repro.lmdb.btree import BTree

__all__ = ["Cursor"]


class Cursor:
    """Forward iteration with range seeks over one tree version.

    The cursor is pinned to the snapshot of the transaction that created
    it; concurrent commits never affect an open cursor.
    """

    def __init__(self, tree: BTree):
        self._tree = tree
        self._iter: Optional[Iterator[Tuple[bytes, bytes]]] = None
        self._current: Optional[Tuple[bytes, bytes]] = None

    # -- positioning -----------------------------------------------------------
    def first(self) -> Optional[Tuple[bytes, bytes]]:
        self._iter = self._tree.items()
        return self.next()

    def seek(self, key: bytes) -> Optional[Tuple[bytes, bytes]]:
        """Position at the first entry >= key (MDB_SET_RANGE)."""
        self._iter = self._tree.items(lo=key)
        return self.next()

    def next(self) -> Optional[Tuple[bytes, bytes]]:
        if self._iter is None:
            return self.first()
        try:
            self._current = next(self._iter)
        except StopIteration:
            self._current = None
        return self._current

    @property
    def current(self) -> Optional[Tuple[bytes, bytes]]:
        return self._current

    # -- bulk helpers ------------------------------------------------------------
    def scan(self, lo: Optional[bytes] = None, hi: Optional[bytes] = None,
             limit: Optional[int] = None) -> list[Tuple[bytes, bytes]]:
        """Collect up to ``limit`` entries in [lo, hi)."""
        out = []
        if limit is not None and limit <= 0:
            return out
        for k, v in self._tree.items(lo=lo, hi=hi):
            out.append((k, v))
            if limit is not None and len(out) >= limit:
                break
        return out

    def __iter__(self) -> Iterator[Tuple[bytes, bytes]]:
        return self._tree.items()
