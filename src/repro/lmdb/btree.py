"""Copy-on-write B+Tree over bytes keys/values.

Nodes are immutable once a version is published: every mutation path-copies
from the touched leaf up to the root and returns a new root (exactly LMDB's
shadow-paging scheme, minus the on-disk page format).  Old roots remain
valid snapshots for as long as a reader holds them.
"""

from __future__ import annotations

import bisect
from typing import Iterator, List, Optional, Tuple

__all__ = ["BTree", "ORDER"]

#: max keys per node before a split (LMDB pages hold dozens of entries;
#: 32 keeps trees shallow without huge copy costs).
ORDER = 32


class _Leaf:
    __slots__ = ("keys", "values")

    def __init__(self, keys: List[bytes], values: List[bytes]):
        self.keys = keys
        self.values = values

    is_leaf = True


class _Branch:
    __slots__ = ("keys", "children")

    def __init__(self, keys: List[bytes], children: List):
        self.keys = keys       # len(children) - 1 separators
        self.children = children

    is_leaf = False


class BTree:
    """An immutable tree version; mutation methods return a new BTree."""

    __slots__ = ("root", "size", "depth")

    def __init__(self, root=None, size: int = 0, depth: int = 1):
        self.root = root if root is not None else _Leaf([], [])
        self.size = size
        self.depth = depth

    # -- reads ----------------------------------------------------------------
    def get(self, key: bytes) -> Optional[bytes]:
        node = self.root
        while not node.is_leaf:
            node = node.children[bisect.bisect_right(node.keys, key)]
        i = bisect.bisect_left(node.keys, key)
        if i < len(node.keys) and node.keys[i] == key:
            return node.values[i]
        return None

    def __contains__(self, key: bytes) -> bool:
        return self.get(key) is not None

    def items(self, lo: Optional[bytes] = None,
              hi: Optional[bytes] = None) -> Iterator[Tuple[bytes, bytes]]:
        """In-order (key, value) pairs with optional [lo, hi) bounds."""
        node = self.root
        # Iterative in-order walk descending towards lo first.
        path = []
        while not node.is_leaf:
            idx = 0 if lo is None else bisect.bisect_right(node.keys, lo)
            path.append((node, idx))
            node = node.children[idx]
        start = 0 if lo is None else bisect.bisect_left(node.keys, lo)
        while True:
            for i in range(start, len(node.keys)):
                k = node.keys[i]
                if hi is not None and k >= hi:
                    return
                yield k, node.values[i]
            start = 0
            # climb to the next leaf
            while path:
                parent, idx = path.pop()
                if idx + 1 < len(parent.children):
                    path.append((parent, idx + 1))
                    node = parent.children[idx + 1]
                    while not node.is_leaf:
                        path.append((node, 0))
                        node = node.children[0]
                    break
            else:
                return

    # -- writes (persistent) -------------------------------------------------------
    def put(self, key: bytes, value: bytes) -> "BTree":
        if not isinstance(key, bytes) or not isinstance(value, bytes):
            raise TypeError("keys and values must be bytes")
        root, split, grew = _insert(self.root, key, value)
        depth = self.depth
        if split is not None:
            sep, right = split
            root = _Branch([sep], [root, right])
            depth += 1
        return BTree(root, self.size + (1 if grew else 0), depth)

    def delete(self, key: bytes) -> "BTree":
        """Remove ``key``; returns self unchanged if absent.

        Underfull nodes are tolerated (no rebalancing on delete) -- the same
        pragmatic choice LMDB makes for freshly deleted pages; lookups stay
        correct and depth never grows.
        """
        root, removed = _delete(self.root, key)
        if not removed:
            return self
        # Collapse a root branch with a single child.
        depth = self.depth
        while not root.is_leaf and len(root.children) == 1:
            root = root.children[0]
            depth -= 1
        return BTree(root, self.size - 1, depth)


def _insert(node, key: bytes, value: bytes):
    """Returns (new_node, optional (separator, right_sibling), grew)."""
    if node.is_leaf:
        i = bisect.bisect_left(node.keys, key)
        keys = list(node.keys)
        values = list(node.values)
        if i < len(keys) and keys[i] == key:
            values[i] = value
            return _Leaf(keys, values), None, False
        keys.insert(i, key)
        values.insert(i, value)
        if len(keys) <= ORDER:
            return _Leaf(keys, values), None, True
        mid = len(keys) // 2
        left = _Leaf(keys[:mid], values[:mid])
        right = _Leaf(keys[mid:], values[mid:])
        return left, (right.keys[0], right), True
    i = bisect.bisect_right(node.keys, key)
    child, split, grew = _insert(node.children[i], key, value)
    keys = list(node.keys)
    children = list(node.children)
    children[i] = child
    if split is not None:
        sep, right = split
        keys.insert(i, sep)
        children.insert(i + 1, right)
        if len(keys) > ORDER:
            mid = len(keys) // 2
            sep_up = keys[mid]
            left = _Branch(keys[:mid], children[:mid + 1])
            right_b = _Branch(keys[mid + 1:], children[mid + 1:])
            return left, (sep_up, right_b), grew
    return _Branch(keys, children), None, grew


def _delete(node, key: bytes):
    if node.is_leaf:
        i = bisect.bisect_left(node.keys, key)
        if i >= len(node.keys) or node.keys[i] != key:
            return node, False
        keys = list(node.keys)
        values = list(node.values)
        del keys[i], values[i]
        return _Leaf(keys, values), True
    i = bisect.bisect_right(node.keys, key)
    child, removed = _delete(node.children[i], key)
    if not removed:
        return node, False
    keys = list(node.keys)
    children = list(node.children)
    children[i] = child
    # Drop a now-empty leaf child entirely.
    if child.is_leaf and not child.keys and len(children) > 1:
        del children[i]
        del keys[max(0, i - 1)]
    return _Branch(keys, children), True
