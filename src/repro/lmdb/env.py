"""Environment: named databases, map-size accounting, reader table."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

from repro.lmdb.btree import BTree

__all__ = ["Environment", "EnvStat", "MapFullError", "SyncMode"]


class MapFullError(RuntimeError):
    """The environment outgrew its map_size (MDB_MAP_FULL)."""


class SyncMode(enum.Enum):
    SYNC = "sync"       # fsync on every commit
    ASYNC = "async"     # write-back, fdatasync-ish
    NOSYNC = "nosync"   # no durability barrier (the paper runs in tmpfs)


@dataclass(frozen=True)
class EnvStat:
    entries: int
    depth: int
    data_bytes: int
    map_size: int
    readers_in_use: int
    max_readers: int


class _NamedDB:
    __slots__ = ("name", "tree")

    def __init__(self, name: str):
        self.name = name
        self.tree = BTree()


class Environment:
    """An LMDB environment: the unit of map sizing and transaction scoping.

    ``max_readers`` bounds simultaneous read transactions (LMDB's reader
    lock table); HatKV sizes it from the ``concurrency`` hint.
    """

    def __init__(self, map_size: int = 1 << 30, max_readers: int = 126,
                 sync_mode: SyncMode = SyncMode.SYNC):
        if map_size <= 0:
            raise ValueError("map_size must be positive")
        if max_readers < 1:
            raise ValueError("max_readers must be >= 1")
        self.map_size = map_size
        self.max_readers = max_readers
        self.sync_mode = sync_mode
        self._dbs: Dict[str, _NamedDB] = {}
        self._data_bytes = 0
        self._write_txn = None
        self._readers = 0
        self.commits = 0
        self.syncs = 0

    # -- databases ------------------------------------------------------------
    def open_db(self, name: str = "main") -> str:
        """Create-or-open a named database; returns its handle (the name)."""
        if name not in self._dbs:
            self._dbs[name] = _NamedDB(name)
        return name

    def _db(self, name: str) -> _NamedDB:
        db = self._dbs.get(name)
        if db is None:
            raise KeyError(f"database {name!r} not opened")
        return db

    # -- transactions ------------------------------------------------------------
    def begin(self, write: bool = False):
        from repro.lmdb.txn import Txn
        return Txn(self, write=write)

    # -- bookkeeping used by Txn -----------------------------------------------------
    def _charge(self, delta: int) -> None:
        if self._data_bytes + delta > self.map_size:
            raise MapFullError(
                f"map_size {self.map_size} exceeded "
                f"({self._data_bytes + delta} bytes)")
        self._data_bytes += delta

    def stat(self, db: str = "main") -> EnvStat:
        tree = self._db(db).tree
        return EnvStat(entries=tree.size, depth=tree.depth,
                       data_bytes=self._data_bytes, map_size=self.map_size,
                       readers_in_use=self._readers,
                       max_readers=self.max_readers)
