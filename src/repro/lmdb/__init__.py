"""An LMDB-like embedded key-value store.

Substitutes for the real LMDB [1] the paper uses as HatKV's storage backend.
The essential architecture is preserved:

* a **copy-on-write B+Tree** -- writers never mutate pages in place; commits
  swap the root pointer, so readers are never blocked;
* **single-writer / multi-reader MVCC** -- one write transaction at a time;
  read transactions pin the root they started from and a slot in a bounded
  reader table (``max_readers``, which HatKV tunes from the concurrency
  hint);
* **named databases** inside one environment, a ``map_size`` bound, and
  sync-mode commit flags (``SYNC`` / ``NOSYNC`` / ``ASYNC``) that HatKV maps
  to simulated commit cost.

The library itself is simulation-agnostic pure Python; HatKV's backend
adapter charges simulated CPU/IO time around these calls.
"""

from repro.lmdb.btree import BTree
from repro.lmdb.env import Environment, EnvStat, MapFullError, SyncMode
from repro.lmdb.txn import ReadersFullError, Txn, TxnError
from repro.lmdb.cursor import Cursor

__all__ = [
    "BTree",
    "Cursor",
    "Environment",
    "EnvStat",
    "MapFullError",
    "ReadersFullError",
    "SyncMode",
    "Txn",
    "TxnError",
]
