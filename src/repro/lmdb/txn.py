"""Transactions: single-writer, snapshot readers.

A write transaction stages new tree versions privately and publishes them
atomically at commit (root-pointer swap).  Read transactions capture the
published roots at begin and never observe later writes -- LMDB's MVCC.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.lmdb.btree import BTree
from repro.lmdb.env import Environment, SyncMode

__all__ = ["ReadersFullError", "Txn", "TxnError"]


class TxnError(RuntimeError):
    pass


class ReadersFullError(TxnError):
    """Reader table exhausted (MDB_READERS_FULL)."""


class Txn:
    """One transaction.  Use as a context manager or commit/abort manually."""

    def __init__(self, env: Environment, write: bool = False):
        self.env = env
        self.write = write
        self._done = False
        if write:
            if env._write_txn is not None:
                raise TxnError("another write transaction is active "
                               "(LMDB is single-writer)")
            env._write_txn = self
            self._staged: Dict[str, BTree] = {}
        else:
            if env._readers >= env.max_readers:
                raise ReadersFullError(
                    f"reader table full ({env.max_readers})")
            env._readers += 1
            self._snapshot = {name: db.tree
                              for name, db in env._dbs.items()}

    # -- context manager -------------------------------------------------------
    def __enter__(self) -> "Txn":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._done:
            return
        if exc_type is None and self.write:
            self.commit()
        else:
            self.abort()

    def _check_live(self) -> None:
        if self._done:
            raise TxnError("transaction already finished")

    def _tree(self, db: str) -> BTree:
        if self.write:
            if db in self._staged:
                return self._staged[db]
            return self.env._db(db).tree
        try:
            return self._snapshot[db]
        except KeyError:
            raise KeyError(f"database {db!r} not opened at txn begin") from None

    # -- operations ----------------------------------------------------------------
    def get(self, key: bytes, db: str = "main") -> Optional[bytes]:
        self._check_live()
        return self._tree(db).get(key)

    def put(self, key: bytes, value: bytes, db: str = "main") -> None:
        self._check_live()
        if not self.write:
            raise TxnError("put in a read-only transaction")
        old = self._tree(db).get(key)
        delta = len(key) + len(value) - (
            (len(key) + len(old)) if old is not None else 0)
        self.env._charge(delta)
        self._staged[db] = self._tree(db).put(key, value)

    def delete(self, key: bytes, db: str = "main") -> bool:
        self._check_live()
        if not self.write:
            raise TxnError("delete in a read-only transaction")
        old = self._tree(db).get(key)
        if old is None:
            return False
        self.env._charge(-(len(key) + len(old)))
        self._staged[db] = self._tree(db).delete(key)
        return True

    def cursor(self, db: str = "main"):
        from repro.lmdb.cursor import Cursor
        self._check_live()
        return Cursor(self._tree(db))

    # -- lifecycle -----------------------------------------------------------------------
    def commit(self) -> None:
        self._check_live()
        self._done = True
        if self.write:
            for name, tree in self._staged.items():
                self.env._db(name).tree = tree
            self.env._write_txn = None
            self.env.commits += 1
            if self.env.sync_mode is not SyncMode.NOSYNC:
                self.env.syncs += 1
        else:
            self.env._readers -= 1

    def abort(self) -> None:
        if self._done:
            return
        self._done = True
        if self.write:
            # Staged map-size charges are rolled back with the trees.
            self.env._write_txn = None
            self._recompute_bytes()
        else:
            self.env._readers -= 1

    def _recompute_bytes(self) -> None:
        # Aborting discards staged trees; recompute live data bytes from the
        # published versions (cheap enough at our scales, exact always).
        total = 0
        for db in self.env._dbs.values():
            for k, v in db.tree.items():
                total += len(k) + len(v)
        self.env._data_bytes = total
