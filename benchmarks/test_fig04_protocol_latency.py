"""Figure 4: RPC-like latency of the nine RDMA protocols, busy vs event.

Reproduces the single-client ping-pong characterization.  The shape checks
encode the paper's reading of the figure: busy polling beats event polling,
Direct-WriteIMM is the best small-message protocol, RFP competitive below
1 KB, rendezvous protocols pay their handshake.
"""

import pytest

from benchmarks.figutil import emit_bench, fmt_rows, is_full, lat_metric, usec
from repro.bench import ProtoBenchSpec, run_protocol_bench
from repro.sim.units import KiB
from repro.verbs.cq import PollMode

PROTOCOLS = ["eager_sendrecv", "direct_write_send", "chained_write_send",
             "write_rndv", "read_rndv", "direct_writeimm",
             "pilaf", "farm", "rfp"]
SIZES = ([4, 64, 512, 4 * KiB, 32 * KiB, 128 * KiB, 512 * KiB]
         if is_full() else [64, 512, 4 * KiB, 128 * KiB])


def _run():
    out = {}
    for mode in (PollMode.BUSY, PollMode.EVENT):
        for proto in PROTOCOLS:
            for size in SIZES:
                r = run_protocol_bench(ProtoBenchSpec(
                    proto, payload=size, iters=12, warmup=3, poll_mode=mode))
                out[(mode.value, proto, size)] = r.mean_latency
    return out


def test_fig04_protocol_latency(benchmark):
    lat = benchmark.pedantic(_run, rounds=1, iterations=1)
    for mode in ("busy", "event"):
        fmt_rows(f"Fig. 4 ({mode} polling): protocol latency",
                 ["protocol"] + [f"{s}B" for s in SIZES],
                 [[p] + [usec(lat[(mode, p, s)]) for s in SIZES]
                  for p in PROTOCOLS])
    benchmark.extra_info["latency_us"] = {
        f"{m}/{p}/{s}": round(v * 1e6, 3) for (m, p, s), v in lat.items()}
    emit_bench("fig04", "protocol_latency",
               {f"latency_us.{m}.{p}.{s}": lat_metric(v)
                for (m, p, s), v in lat.items()},
               config={"protocols": PROTOCOLS, "sizes": SIZES,
                       "iters": 12, "warmup": 3})

    # -- shape assertions (the paper's Fig. 4 findings) --
    small = 512
    for proto in PROTOCOLS:
        assert lat[("busy", proto, small)] < lat[("event", proto, small)]
    dwi = lat[("busy", "direct_writeimm", small)]
    for proto in PROTOCOLS:
        assert dwi <= lat[("busy", proto, small)] * 1.001, proto
    assert lat[("busy", "rfp", small)] < dwi * 1.25
    assert lat[("busy", "write_rndv", small)] > dwi * 1.5
