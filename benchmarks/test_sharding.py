"""Sharded HatKV: aggregate YCSB-B throughput vs shard count.

One HatKV server saturates its NIC TX port serving the read-heavy mix
(1 KB GET / 10 KB MultiGET responses); a consistent-hash cluster splits
that outbound load across shard NICs.  The ring seed is chosen so the
zipfian *mass* (not just the key count) lands evenly -- with 1000 records
the head key alone is ~13% of the draw, so an unlucky arc layout leaves
one shard carrying 60%+ of the bytes and caps scaling well below 2x.

Headline gates: 2 shards >= 1.7x the single-shard aggregate, and 4 shards
monotonically above 2.  The gap to the ideal 2x is real fan-out cost:
every MultiGET batch now splits into per-shard sub-RPCs, each paying its
own wire and NIC-engine overhead.

Each shard count runs on the phased harness; the scaling gates compare
MEASUREMENT-window throughput only (start-time attribution), and every
phase lands as its own ``shardingph`` BenchRecord.
"""

import pytest

from benchmarks.figutil import emit_bench, fmt_rows, is_full, kops, \
    tput_metric
from repro.bench import PhasedRun
from repro.hatkv import ShardedKVCluster
from repro.sim.units import us
from repro.testbed import Testbed
from repro.ycsb import WORKLOAD_B, measurement_result, run_ycsb_phased

SHARDS = [1, 2, 4]
N_CLIENTS = 144 if is_full() else 96
WARMUP = 250 * us
MEASURE = 1200 * us if is_full() else 800 * us
COOLDOWN = 100 * us
# Chosen for even zipfian-mass splits (51/49 at 2 shards, max 28% of the
# draw on any shard at 4); see the module docstring.
VNODES = 256
RING_SEED = 3


def _run():
    out = {}
    for shards in SHARDS:
        tb = Testbed(n_nodes=shards + 9)
        cluster = ShardedKVCluster(tb, shards, concurrency=N_CLIENTS,
                                   vnodes=VNODES, ring_seed=RING_SEED).start()
        run = PhasedRun(tb.sim, name=f"ycsb_b.{shards}shard", warmup=WARMUP,
                        measurement=MEASURE, cooldown=COOLDOWN)
        run_ycsb_phased(cluster, cluster.connect, WORKLOAD_B, testbed=tb,
                        run=run, n_clients=N_CLIENTS, n_client_nodes=8)
        run.emit_phase_records("shardingph", config={"shards": shards,
                                                     "n_clients": N_CLIENTS})
        out[shards] = measurement_result(run)
    return out


def test_sharding_ycsb_b_scaling(benchmark):
    res = benchmark.pedantic(_run, rounds=1, iterations=1)
    base = res[SHARDS[0]].throughput_ops
    fmt_rows(f"Sharded HatKV: YCSB-B aggregate throughput ({N_CLIENTS} "
             f"clients, {MEASURE / us:.0f}us measured window)",
             ["shards", "throughput", "scaling"],
             [[s, kops(res[s].throughput_ops),
               f"x{res[s].throughput_ops / base:.2f}"] for s in SHARDS])
    benchmark.extra_info["throughput_kops"] = {
        s: round(r.throughput_ops / 1e3, 1) for s, r in res.items()}
    emit_bench("sharding", "ycsb_b_scaling",
               {f"tput_kops.{s}shard": tput_metric(res[s].throughput_ops)
                for s in SHARDS},
               config={"shards": SHARDS, "n_clients": N_CLIENTS,
                       "warmup_us": WARMUP / us, "measure_us": MEASURE / us,
                       "vnodes": VNODES, "ring_seed": RING_SEED})

    tput = {s: res[s].throughput_ops for s in SHARDS}
    assert tput[2] >= 1.7 * tput[1], (
        f"2 shards only scaled x{tput[2] / tput[1]:.2f} over one "
        f"(need >= 1.7)")
    assert tput[4] >= tput[2], (
        f"4 shards ({kops(tput[4])}) below 2 shards ({kops(tput[2])})")
