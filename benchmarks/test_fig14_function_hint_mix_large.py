"""Figure 14: function-level hints -- mixed workload, 128 KB payloads."""

import pytest

from benchmarks.figutil import (emit_bench, fmt_rows, is_full, kops,
                                lat_metric, tput_metric, usec)
from repro.atb import MixBenchmark
from repro.sim.units import KiB

MODES = ["hatrpc", "hybrid_eager_rndv", "direct_write_send", "rfp",
         "direct_writeimm"]
CLIENTS = [1, 4, 16, 64] if is_full() else [4, 16, 48]
PAYLOAD = 128 * KiB


def _run():
    out = {}
    for mode in MODES:
        for nc in CLIENTS:
            r = MixBenchmark(mode=mode, payload=PAYLOAD, n_clients=nc,
                             iters=10, warmup=3).run()
            out[(mode, nc)] = (r.lat_stats.mean, r.tput_ops_per_sec)
    return out


def test_fig14_function_hint_mix_large(benchmark):
    res = benchmark.pedantic(_run, rounds=1, iterations=1)
    fmt_rows("Fig. 14 (128KB): latency-call latency",
             ["mode"] + [f"{c} clients" for c in CLIENTS],
             [[m] + [usec(res[(m, c)][0]) for c in CLIENTS] for m in MODES])
    fmt_rows("Fig. 14 (128KB): throughput-call throughput",
             ["mode"] + [f"{c} clients" for c in CLIENTS],
             [[m] + [kops(res[(m, c)][1]) for c in CLIENTS] for m in MODES])
    benchmark.extra_info["mix"] = {
        f"{m}/{c}": {"lat_us": round(v[0] * 1e6, 2),
                     "tput_kops": round(v[1] / 1e3, 1)}
        for (m, c), v in res.items()}
    metrics = {}
    for (m, c), (lat, tput) in res.items():
        metrics[f"lat_us.{m}.{c}"] = lat_metric(lat)
        metrics[f"tput_kops.{m}.{c}"] = tput_metric(tput)
    emit_bench("fig14", "function_hint_mix_large", metrics,
               config={"modes": MODES, "clients": CLIENTS,
                       "payload": PAYLOAD})

    # Latency calls keep their isolated fast path despite the bulk traffic.
    for nc in CLIENTS:
        assert res[("hatrpc", nc)][0] < \
            res[("hybrid_eager_rndv", nc)][0] * 1.05, nc
