"""Figure 12: service-level hints -- ATB aggregated throughput.

HatRPC (perf_goal=throughput + deployment concurrency) vs the pinned
baselines across client counts for 512 B and 128 KB payloads.
"""

import pytest

from benchmarks.figutil import emit_bench, fmt_rows, is_full, kops, tput_metric
from repro.atb import ThroughputBenchmark
from repro.sim.units import KiB

MODES = ["hatrpc", "hybrid_eager_rndv", "direct_write_send", "rfp",
         "direct_writeimm"]
CLIENTS = [1, 4, 16, 64, 128, 256, 512] if is_full() else [4, 16, 64]
SIZES = [512, 128 * KiB]


def _run():
    out = {}
    for size in SIZES:
        iters = 15 if size == 512 else 10
        for mode in MODES:
            for nc in CLIENTS:
                r = ThroughputBenchmark(mode=mode, payload=size,
                                        n_clients=nc, iters=iters,
                                        warmup=3).run()
                out[(mode, size, nc)] = r.ops_per_sec
    return out


def test_fig12_service_hint_throughput(benchmark):
    tput = benchmark.pedantic(_run, rounds=1, iterations=1)
    for size in SIZES:
        fmt_rows(f"Fig. 12 ({size}B): ATB throughput (ops/s)",
                 ["mode"] + [f"{c} clients" for c in CLIENTS],
                 [[m] + [kops(tput[(m, size, c)]) for c in CLIENTS]
                  for m in MODES])
    benchmark.extra_info["throughput_kops"] = {
        f"{m}/{s}/{c}": round(v / 1e3, 1) for (m, s, c), v in tput.items()}
    emit_bench("fig12", "service_hint_throughput",
               {f"throughput_kops.{m}.{s}.{c}": tput_metric(v)
                for (m, s, c), v in tput.items()},
               config={"modes": MODES, "clients": CLIENTS, "sizes": SIZES})

    big_c = CLIENTS[-1]
    # HatRPC never falls behind the hint-less baseline.
    for size in SIZES:
        for nc in CLIENTS:
            assert tput[("hatrpc", size, nc)] > \
                tput[("hybrid_eager_rndv", size, nc)] * 0.95, (size, nc)
    # Small messages at scale: HatRPC (Direct-WriteIMM choice) beats RFP.
    assert tput[("hatrpc", 512, big_c)] > tput[("rfp", 512, big_c)]
