"""Elastic resize under live YCSB-B: grow the ring mid-MEASUREMENT.

One phased run against a 2-shard cached HatKV cluster; a
:class:`~repro.hatkv.migration.ResizeTrigger` watches the live
``hatkv.keys.shard<i>`` balance probe and -- restricted to the
MEASUREMENT phase -- fires a 2 -> 4 resize while the YCSB-B clients keep
issuing.  Every stub is wrapped in the zero-stale oracle from
:mod:`benchmarks.oracle`, so the elastic-resharding claim is gated end
to end:

* **zero lost / duplicated keys**: after the run every loaded key sits
  on exactly its new-ring owner, once;
* **zero stale reads**: thousands of oracle-checked reads across the
  copy, cutover, and forwarding windows, none older than its acked
  floor (and cached replies never regress a key's version);
* **bounded p99 disturbance**: a GET-p99 SLO scoped to MEASUREMENT must
  see no sustained violation while ranges fence and flip;
* **progress is observable**: the JSONL stream's
  ``hatkv.migration.pct_done`` probe walks to 100 and the migration
  events land as stream annotations.

A second, smaller cell (2 -> 3, fewer clients) is the CI migration
smoke: same oracle, same placement gates, sized to run in seconds.
"""

import os
import tempfile

import pytest

from benchmarks.figutil import emit_bench, fmt_rows, is_full, kops, \
    tput_metric
from benchmarks.oracle import OracleStub, StaleOracle
from repro import obs
from repro.bench import Phase, PhasedRun, ScenarioMatrix, metric
from repro.hatkv import ResizeTrigger, ShardedKVCluster, load_hatkv_module
from repro.hatkv.client import cache_for
from repro.obs import JsonlSink, MetricsRegistry, MetricsSampler, SloSpec, \
    SloWatchdog, read_stream
from repro.sim.units import ms, us
from repro.testbed import Testbed
from repro.ycsb import WORKLOAD_B, run_ycsb_phased, scenario_spec
from repro.ycsb.phased import measurement_result
from repro.ycsb.workload import OpType

SHARDS = 2
TARGET = 4
TTL = 50 * us
HOT_PROMOTE = 4
WARMUP = 0.75 * ms
MEASURE = 4 * ms if is_full() else 3 * ms
COOLDOWN = 0.5 * ms
SAMPLE_EVERY = 50 * us
#: Modest vnode count: the migration fences one arc at a time, so the
#: range count (|moved vnodes| coalesced) is the p99-disturbance knob.
VNODES = 32
#: GET p99 ceiling while ranges fence and flip.  The sampled p99 sits
#: in the ~16 us bucket at steady state and peaks in the ~66 us bucket
#: while a fence parks one arc's writers; the ceiling asserts the
#: disturbance never escalates into the next latency regime.
SLO_GET_P99 = 80 * us
SLO_SUSTAIN = 300 * us

#: One YCSB-B cell at default skew; the resize is the event under test.
MATRIX = ScenarioMatrix(skews=[0.99], value_sizes=[100])


def _stream_path(tag: str) -> str:
    """CI sets REPRO_STREAM_OUT; each cell streams beside it."""
    out = os.environ.get("REPRO_STREAM_OUT")
    if out:
        root, ext = os.path.splitext(out)
        return f"{root}.{tag}{ext or '.jsonl'}"
    return os.path.join(tempfile.gettempdir(), f"resize_ycsb_{tag}.jsonl")


def _elastic(target: int, *, n_clients: int, n_client_nodes: int,
             measure: float, vnodes: int, tag: str):
    """One phased YCSB-B run that grows SHARDS -> ``target`` mid-run."""
    scenario = MATRIX.scenarios()[0]
    spec = scenario_spec(WORKLOAD_B, scenario)
    reg = MetricsRegistry()
    events = []
    with obs.installed(reg):
        tb = Testbed(n_nodes=target + n_client_nodes + 1)
        gen = load_hatkv_module(
            "function", cacheable={"ttl": TTL, "hot_promote": HOT_PROMOTE})
        cluster = ShardedKVCluster(
            tb, SHARDS, gen_module=gen, vnodes=vnodes,
            reserve_nodes=tb.nodes[SHARDS:target]).start()
        oracle = StaleOracle(tb.sim)
        node_caches = {}

        def connect(node):
            shared = node_caches.get(node.name)
            if shared is None:
                # One cache per client *node* (the per-machine shape);
                # range cutovers invalidate it epoch-tagged.
                shared = node_caches[node.name] = cache_for(node, gen)
            router = yield from cluster.connect(node, cache=shared)
            return OracleStub(router, oracle)

        sampler = MetricsSampler(tb.sim, reg, interval=SAMPLE_EVERY,
                                 sink=JsonlSink(_stream_path(tag)))
        run = PhasedRun(tb.sim, name=f"ycsb_resize/{tag}/{scenario.name}",
                        warmup=WARMUP, measurement=measure,
                        cooldown=COOLDOWN, registry=reg, sampler=sampler)
        watchdog = SloWatchdog(
            [SloSpec("get-p99", "bench.op_latency.get.p99", "<",
                     SLO_GET_P99, sustain=SLO_SUSTAIN,
                     phases=(Phase.MEASUREMENT.value,),
                     description="GET p99 bounded through the resize")],
            registry=reg).attach(sampler)
        # Load-aware trigger: mean keys/shard is ~record_count/SHARDS
        # right after the bulk load, so the balance gauge crosses this
        # at the first MEASUREMENT sample and the resize fires mid-run.
        trigger = ResizeTrigger(
            cluster, target,
            keys_per_shard=0.8 * spec.record_count / SHARDS,
            phase=Phase.MEASUREMENT.value).attach(sampler)

        def note(kind, **attrs):
            events.append({"kind": kind, "t": tb.sim.now, **attrs})
            sampler.event(kind, **attrs)

        cluster.on_migration.append(note)
        run_ycsb_phased(cluster, connect, spec, testbed=tb, run=run,
                        n_clients=n_clients, n_client_nodes=n_client_nodes)

    # Final placement, key by key: every loaded key on exactly its
    # new-ring owner, no shard holding a key it does not own.
    placed, misplaced, dupes = {}, 0, 0
    for shard, srv in enumerate(cluster.servers):
        with srv.backend.env.begin() as txn:
            for k, _v in txn.cursor().scan():
                if k in placed:
                    dupes += 1
                placed[k] = shard
                if cluster.ring.shard_of(k) != shard:
                    misplaced += 1
    by_kind = {e["kind"]: e for e in events}
    return {
        "tag": tag,
        "run": run,
        "result": measurement_result(run),
        "oracle": oracle,
        "trigger": trigger,
        "events": events,
        "by_kind": by_kind,
        "watchdog": watchdog,
        "cluster": cluster,
        "spec": spec,
        "placed": placed,
        "misplaced": misplaced,
        "dupes": dupes,
        "forward_reads": reg.counter("hatkv.router.forward_reads").value,
        "stream": list(read_stream(_stream_path(tag))),
        "config": {"shards_from": SHARDS, "shards_to": target,
                   "vnodes": vnodes, "n_clients": n_clients,
                   "n_client_nodes": n_client_nodes,
                   "ttl_us": TTL / us, **scenario.config()},
    }


def _migration_ms(r) -> float:
    return (r["by_kind"]["resize_done"]["t"]
            - r["by_kind"]["resize_start"]["t"]) / ms


def _assert_elastic_invariants(r):
    """The gates both cells share: nothing lost, nothing duplicated,
    nothing stale, and the resize genuinely ran mid-MEASUREMENT."""
    run, cluster, trigger = r["run"], r["cluster"], r["trigger"]
    assert run.unattributed == 0
    assert run.ops(Phase.MEASUREMENT) > 0
    # The trigger fired exactly once, off the key-balance gauge, inside
    # the MEASUREMENT window -- and the resize ran to completion.
    assert trigger.fired and trigger.fired_at is not None
    assert WARMUP <= trigger.fired_at
    assert cluster.n_shards == r["config"]["shards_to"]
    assert cluster.migration is None
    for kind in ("resize_start", "resize_cutover_complete",
                 "cleanup_done", "resize_done"):
        assert kind in r["by_kind"], f"missing migration event {kind}"
    # Zero lost / duplicated / misplaced keys (replicas=1: each key on
    # exactly its new-ring owner).  WORKLOAD_B never inserts or deletes,
    # so the loaded keyset is the exact survivor set.
    assert len(r["placed"]) == r["spec"].record_count
    assert r["dupes"] == 0 and r["misplaced"] == 0
    # Zero stale reads across copy, cutover, and forwarding windows.
    assert r["oracle"].checked > 1000
    assert r["oracle"].stale == 0, r["oracle"].first_stale
    # The stream carried phase-tagged samples, the migration events, and
    # the per-range progress probe walking to 100%.
    samples = [s for s in r["stream"] if s.get("type") == "sample"]
    assert samples and all("phase" in s["tags"] for s in samples)
    stream_events = {s["kind"] for s in r["stream"]
                     if s.get("type") == "event"}
    assert "resize_start" in stream_events \
        and "resize_done" in stream_events
    pcts = [s["metrics"]["hatkv.migration.pct_done"] for s in samples
            if "hatkv.migration.pct_done" in s["metrics"]]
    assert pcts and pcts[-1] == 100.0
    # ... and the walk is visible: some sample caught it mid-flight.
    assert any(0.0 < p < 100.0 for p in pcts), \
        "no sample observed the migration in progress"
    assert max(pcts) == 100.0 and pcts == sorted(pcts)


# -- the figure cell: 2 -> 4 mid-MEASUREMENT ----------------------------------

def _run_elastic():
    return _elastic(TARGET, n_clients=32, n_client_nodes=4,
                    measure=MEASURE, vnodes=VNODES, tag="grow4")


def test_elastic_resize_mid_measurement_is_lossless(benchmark):
    r = benchmark.pedantic(_run_elastic, rounds=1, iterations=1)
    res = r["result"]
    get = res.per_op[OpType.GET]
    prog = r["cluster"]._last_plan.progress()
    fmt_rows(f"Elastic resize {SHARDS} -> {TARGET} mid-MEASUREMENT "
             f"({VNODES} vnodes, 32 clients)",
             ["tput", "get-p99", "migr-ms", "ranges", "keys-moved",
              "fwd-reads", "stale/checked"],
             [[kops(res.throughput_ops), f"{get.p99 / us:6.1f}us",
               f"{_migration_ms(r):6.2f}ms", int(prog["ranges_total"]),
               int(prog["keys_moved"]), r["forward_reads"],
               f"{r['oracle'].stale}/{r['oracle'].checked}"]])
    r["run"].emit_phase_records("resize", "ycsb_b_elastic",
                                config=r["config"])
    emit_bench("resize", "ycsb_b_elastic",
               {"tput_kops": tput_metric(res.throughput_ops),
                "get_p99_us": metric(round(get.p99 / us, 2), unit="us",
                                     better="lower"),
                "migration_ms": metric(round(_migration_ms(r), 3),
                                       unit="ms", better="lower"),
                "keys_moved": metric(int(prog["keys_moved"]), unit="keys",
                                     better="none"),
                "stale_reads": metric(r["oracle"].stale, unit="ops",
                                      better="lower"),
                "slo_violations": metric(len(r["watchdog"].violations),
                                        unit="count", better="lower")},
               config=r["config"])

    _assert_elastic_invariants(r)
    # The whole migration -- copy, per-range fences, forwarding window,
    # cleanup -- fit inside the MEASUREMENT window it started in.
    assert r["by_kind"]["resize_done"]["t"] <= WARMUP + MEASURE
    # Bounded p99 disturbance: the SLO scoped to MEASUREMENT never saw a
    # sustained breach while ranges fenced and flipped.
    assert r["watchdog"].violations == [], r["watchdog"].report()
    # The migration moved real volume (about half the keyspace for
    # 2 -> 4) and the per-range accounting agrees with what landed.
    assert int(prog["ranges_total"]) > 0
    assert prog["keys_moved"] >= 0.3 * r["spec"].record_count
    assert prog["inflight_writes"] == 0


# -- the CI smoke cell: 2 -> 3, sized for seconds -----------------------------

def _run_smoke():
    return _elastic(3, n_clients=16, n_client_nodes=2,
                    measure=1.5 * ms, vnodes=24, tag="grow3")


def test_resize_smoke_2_to_3_zero_stale(benchmark):
    r = benchmark.pedantic(_run_smoke, rounds=1, iterations=1)
    res = r["result"]
    prog = r["cluster"]._last_plan.progress()
    fmt_rows("Migration smoke 2 -> 3 (YCSB-B, zero-stale oracle)",
             ["tput", "migr-ms", "keys-moved", "stale/checked"],
             [[kops(res.throughput_ops), f"{_migration_ms(r):6.2f}ms",
               int(prog["keys_moved"]),
               f"{r['oracle'].stale}/{r['oracle'].checked}"]])
    emit_bench("resize", "smoke_2_to_3",
               {"stale_reads": metric(r["oracle"].stale, unit="ops",
                                      better="lower"),
                "keys_moved": metric(int(prog["keys_moved"]), unit="keys",
                                     better="none"),
                "tput_kops": tput_metric(res.throughput_ops)},
               config=r["config"])
    _assert_elastic_invariants(r)
