"""The zero-stale read oracle shared by the cache and resize benchmarks.

Wraps any KV stub (single-server client or shard router) so that every
read is freshness-checked against a run-global ledger while writes feed
it -- with deliberately zero write coordination, so the oracle never
perturbs the concurrency it is judging.  See :class:`StaleOracle` for the
two sound checks (acked-stamp floor, version monotonicity) and why
overlapping writers taint each other out of the floor.
"""

from __future__ import annotations

__all__ = ["OracleStub", "StaleOracle"]

_STAMP = 12                      # zero-padded sequence prefix + b"|"


def _seq_of(value: bytes) -> int:
    """The write sequence stamped into ``value`` (0 for bulk-loaded)."""
    if len(value) > _STAMP and value[_STAMP:_STAMP + 1] == b"|" \
            and value[:_STAMP].isdigit():
        return int(value[:_STAMP])
    return 0


class StaleOracle:
    """Run-global freshness ledger; deliberately zero write coordination
    (serializing hot-key writers would convoy the very barrier waits the
    lease protocol lets overlap, distorting the measured system).

    Two sound checks compose:

    * **Stamp floor.**  Every Put stamps a global sequence into the
      value.  A Put that overlapped no other Put on its key advances the
      key's floor to its sequence at ack (non-overlapping writes apply
      in real-time order, so its value is durably the newest).  Puts
      that did overlap advance nothing -- any member of the overlap
      group may legitimately be the survivor, and flagging the others
      would be a false positive.  A read issued after the ack must
      return a stamp at least the floor captured at issue.

    * **Version monotonicity** (cached leg; uncached replies carry no
      version).  Once a reply with server version ``v`` has *arrived*,
      every read of that key *issued* later must observe ``>= v`` --
      reads of one key are linearizable.  This is the check with teeth
      on contended hot keys: a cache hit served past the server's write
      barrier returns a version some completed read already exceeded.

    Both checks hold across an elastic resize: the stamp floor only ever
    references acknowledged writes (a migrated key's last-acked value
    must survive the handoff bit-for-bit), and version continuity across
    the cutover is exactly what the lease-adoption step guarantees.
    """

    def __init__(self, sim):
        self.sim = sim
        self.next_seq = 1
        self.floor = {}             # key -> stamp floor (acked, unoverlapped)
        self.vfloor = {}            # key -> max version seen in a done read
        self._writes = {}           # key -> {put_id: tainted?}
        self._next_put = 0
        self.checked = 0
        self.stale = 0
        self.first_stale = None

    # -- writes ---------------------------------------------------------------
    def stamp(self, value: bytes) -> "tuple[int, bytes]":
        seq = self.next_seq
        self.next_seq += 1
        return seq, b"%012d|" % seq + value

    def write_issued(self, key: bytes) -> int:
        """Register an in-flight Put; overlap taints everyone involved."""
        pid = self._next_put
        self._next_put += 1
        group = self._writes.setdefault(key, {})
        tainted = bool(group)
        if tainted:
            for other in group:
                group[other] = True
        group[pid] = tainted
        return pid

    def write_acked(self, key: bytes, pid: int, seq: int) -> None:
        group = self._writes.get(key, {})
        tainted = group.pop(pid, True)
        if not group:
            self._writes.pop(key, None)
        if not tainted:
            self.floor[key] = max(self.floor.get(key, 0), seq)

    # -- reads ----------------------------------------------------------------
    def read_floors(self, key: bytes) -> "tuple[int, int]":
        """(stamp floor, version floor) captured at read-issue time."""
        return self.floor.get(key, 0), self.vfloor.get(key, 0)

    def check(self, key: bytes, floors, found: bool, value: bytes,
              version=None) -> None:
        sfloor, vfloor = floors
        self.checked += 1
        seen = _seq_of(value) if found else -1
        bad = (found and seen < sfloor) or (not found and sfloor > 0) \
            or (version is not None and version < vfloor)
        if bad:
            self.stale += 1
            if self.first_stale is None:
                self.first_stale = {"key": key, "stamp_floor": sfloor,
                                    "seen_stamp": seen,
                                    "version_floor": vfloor,
                                    "seen_version": version,
                                    "t": self.sim.now}
        if version is not None:
            self.vfloor[key] = max(self.vfloor.get(key, 0), version)


class OracleStub:
    """A KV stub whose reads are freshness-checked and whose writes feed
    the ledger.  Results pass through unchanged -- the phased harness's
    own assertions (``res.found`` etc.) still see the real replies."""

    def __init__(self, stub, oracle: StaleOracle):
        self._stub = stub
        self._oracle = oracle

    def Get(self, key):
        floors = self._oracle.read_floors(key)
        res = yield from self._stub.Get(key)
        self._oracle.check(key, floors, res.found, res.value,
                           version=getattr(res, "version", None))
        return res

    def Put(self, key, value):
        seq, stamped = self._oracle.stamp(value)
        pid = self._oracle.write_issued(key)
        res = yield from self._stub.Put(key, stamped)
        self._oracle.write_acked(key, pid, seq)
        return res

    def MultiGet(self, keys):
        floors = [self._oracle.read_floors(k) for k in keys]
        values = yield from self._stub.MultiGet(keys)
        for k, f, v in zip(keys, floors, values):
            self._oracle.check(k, f, bool(v), v)
        return values

    def MultiPut(self, keys, values):
        seqs, stamped = [], []
        for v in values:
            seq, sv = self._oracle.stamp(v)
            seqs.append(seq)
            stamped.append(sv)
        pids = [self._oracle.write_issued(k) for k in keys]
        res = yield from self._stub.MultiPut(keys, stamped)
        for k, pid, seq in zip(keys, pids, seqs):
            self._oracle.write_acked(k, pid, seq)
        return res

    def Scan(self, start_key, count):
        return (yield from self._stub.Scan(start_key, count))
