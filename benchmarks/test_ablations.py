"""Ablation benches for the design choices DESIGN.md calls out.

Each isolates one mechanism the HatRPC design leans on:

* polling discipline crossover (busy vs event as concurrency grows);
* chained-WR doorbell saving (Direct-Write-Send vs Chained vs WriteIMM);
* the Hybrid-EagerRNDV 4 KB threshold (eager/rendezvous switch point);
* hint-machinery overhead (HatRPC vs the same protocol pinned);
* serialization protocol choice (binary vs compact vs JSON sizes + RPC
  latency impact).
"""

import pytest

from benchmarks.figutil import fmt_rows, kops, usec
from repro.bench import ProtoBenchSpec, run_protocol_bench
from repro.atb import LatencyBenchmark
from repro.protocols import ProtoConfig
from repro.sim.units import KiB
from repro.verbs.cq import PollMode


def test_abl_polling_crossover(benchmark):
    """Busy polling wins under-subscribed, loses over-subscribed."""
    def run():
        out = {}
        for mode in (PollMode.BUSY, PollMode.EVENT):
            for nc in (2, 8, 32, 96):
                r = run_protocol_bench(ProtoBenchSpec(
                    "direct_writeimm", payload=512, n_clients=nc, iters=15,
                    warmup=4, poll_mode=mode))
                out[(mode.value, nc)] = r.throughput_ops
        return out

    tput = benchmark.pedantic(run, rounds=1, iterations=1)
    fmt_rows("Ablation: polling discipline vs concurrency (512B, ops/s)",
             ["mode", "2", "8", "32", "96"],
             [[m] + [kops(tput[(m, c)]) for c in (2, 8, 32, 96)]
              for m in ("busy", "event")])
    assert tput[("busy", 2)] > tput[("event", 2)]
    assert tput[("event", 96)] > tput[("busy", 96)]


def test_abl_wr_chaining(benchmark):
    """One doorbell per message (chained / IMM) vs two (separate)."""
    def run():
        out = {}
        for proto in ("direct_write_send", "chained_write_send",
                      "direct_writeimm"):
            r = run_protocol_bench(ProtoBenchSpec(proto, payload=64,
                                                  iters=20, warmup=5))
            out[proto] = r.mean_latency
        return out

    lat = benchmark.pedantic(run, rounds=1, iterations=1)
    fmt_rows("Ablation: WR chaining (64B latency)",
             ["protocol", "latency"],
             [[p, usec(v)] for p, v in lat.items()])
    assert lat["chained_write_send"] < lat["direct_write_send"]
    assert lat["direct_writeimm"] < lat["chained_write_send"]


def test_abl_eager_threshold(benchmark):
    """Sweep the Hybrid-EagerRNDV switch point around the 4KB default."""
    payloads = [2 * KiB, 8 * KiB]
    thresholds = [512, 4 * KiB, 16 * KiB]

    def run():
        from repro.protocols import get_protocol
        from repro.testbed import Testbed
        out = {}
        for thr in thresholds:
            for size in payloads:
                tb = Testbed(n_nodes=2)
                cfg = ProtoConfig(eager_threshold=thr, max_msg=64 * KiB)
                client_cls, server_cls = get_protocol("hybrid_eager_rndv")
                resp = bytes(size)
                server_cls(tb.node(0).nic, 1, lambda _r, _resp=resp: _resp,
                           cfg).start()
                lat = []

                def client():
                    c = client_cls(tb.node(1).nic, cfg)
                    yield from c.connect(tb.node(0), 1)
                    req = bytes(size)
                    for k in range(15):
                        t0 = tb.sim.now
                        yield from c.call(req, resp_hint=size)
                        if k >= 3:
                            lat.append(tb.sim.now - t0)

                tb.sim.run(tb.sim.process(client()))
                out[(thr, size)] = sum(lat) / len(lat)
        return out

    lat = benchmark.pedantic(run, rounds=1, iterations=1)
    fmt_rows("Ablation: Hybrid eager/rendezvous threshold (latency)",
             ["threshold"] + [f"{p}B payload" for p in payloads],
             [[f"{t}B"] + [usec(lat[(t, p)]) for p in payloads]
              for t in thresholds])
    # 2KB payload: eager (thr>=4KB) beats rendezvous (thr=512B).
    assert lat[(4 * KiB, 2 * KiB)] < lat[(512, 2 * KiB)]
    # 8KB payload: rendezvous (thr=4KB) beats oversized eager copies only
    # if the copy cost dominates; at minimum the default is never the
    # worst of the three.
    default = lat[(4 * KiB, 8 * KiB)]
    assert default <= max(lat[(512, 8 * KiB)], lat[(16 * KiB, 8 * KiB)])


def test_abl_hint_overhead(benchmark):
    """The hint machinery must cost (almost) nothing per call: HatRPC vs
    the identical protocol pinned statically."""
    def run():
        hat = LatencyBenchmark(mode="hatrpc", payload=512, iters=20,
                               warmup=5).run().mean
        pinned = LatencyBenchmark(mode="direct_writeimm", payload=512,
                                  iters=20, warmup=5).run().mean
        return {"hatrpc": hat, "pinned": pinned}

    lat = benchmark.pedantic(run, rounds=1, iterations=1)
    overhead = (lat["hatrpc"] - lat["pinned"]) / lat["pinned"]
    fmt_rows("Ablation: dynamic-hint overhead (512B latency)",
             ["path", "latency"],
             [["HatRPC (hints resolved per call)", usec(lat["hatrpc"])],
              ["pinned Direct-WriteIMM", usec(lat["pinned"])],
              ["overhead", f"{overhead * 100:+9.2f}%"]])
    benchmark.extra_info["overhead_pct"] = round(overhead * 100, 3)
    assert abs(overhead) < 0.05  # paper: hint overhead is minimized


def test_abl_serialization_protocols(benchmark):
    """Thrift protocol layer choice: wire sizes for a realistic struct."""
    from repro.thrift import (TBinaryProtocol, TCompactProtocol,
                              TJSONProtocol, TMemoryBuffer, TType)

    def encode(proto_cls):
        buf = TMemoryBuffer()
        prot = proto_cls(buf)
        prot.write_struct_begin("Row")
        for fid in range(1, 11):
            prot.write_field_begin("f", TType.I64, fid)
            prot.write_i64(fid * 1000)
            prot.write_field_end()
        prot.write_field_begin("name", TType.STRING, 11)
        prot.write_string("customer#000000042")
        prot.write_field_end()
        prot.write_field_begin("scores", TType.LIST, 12)
        prot.write_list_begin(TType.DOUBLE, 8)
        for i in range(8):
            prot.write_double(i * 1.5)
        prot.write_list_end()
        prot.write_field_end()
        prot.write_field_stop()
        prot.write_struct_end()
        return len(buf.getvalue())

    def run():
        return {cls.__name__: encode(cls) for cls in
                (TBinaryProtocol, TCompactProtocol, TJSONProtocol)}

    sizes = benchmark.pedantic(run, rounds=1, iterations=1)
    fmt_rows("Ablation: serialization protocol wire size",
             ["protocol", "bytes"],
             [[name, str(n)] for name, n in sizes.items()])
    assert sizes["TCompactProtocol"] < sizes["TBinaryProtocol"] \
        < sizes["TJSONProtocol"]
