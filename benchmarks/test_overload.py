"""Graceful degradation under overload: admission control + QP mux + SRQ.

One SRQ-backed server (a single receive dispatcher, however many clients)
behind a priority-tiered admission gate; logical clients multiplex over
bounded MuxPool connections, far past the server's core count.  The sweep
drives offered load from near-saturation to heavy oversubscription and
checks the three graceful-degradation guarantees:

* throughput **plateaus** at the gate's capacity -- no collapse: every
  sweep point keeps >= 0.8x the peak goodput;
* overload surfaces as the typed ``REJECTED`` error (retryable, with the
  server's advised backoff), never as ``TIMED_OUT``;
* shedding follows the ``priority`` IDL hint: low-priority traffic is
  shed strictly before high-priority, whose goodput stays within 10% of
  its uncontended level.

Every sweep point runs on the phased harness: goodput is the class's
MEASUREMENT-window throughput (ops attributed to the phase they started
in), and each phase is emitted as an ``overloadph`` BenchRecord.
"""

import random
from dataclasses import replace

import pytest

from benchmarks.figutil import emit_bench, fmt_rows, is_full, kops
from repro.bench import Phase, PhasedRun, metric
from repro.core.mux import MuxPool
from repro.core.overload import AdmissionConfig
from repro.core.resilience import RetryBudget, RetryPolicy
from repro.core.runtime import HatRpcServer, service_plan_of
from repro.idl import load_idl
from repro.sim.core import AllOf
from repro.sim.units import ms, us
from repro.testbed import Testbed
from repro.thrift.errors import TRejectedException, TTransportException

IDL = """
service OverloadSvc {
    hint: concurrency = 64, perf_goal = throughput;

    string HighOp(1: string k) [ hint: priority = high; ]
    string LowOp(1: string k) [ hint: priority = low; ]
}
"""

SERVICE = "OverloadSvc"
HANDLER_TIME = 100 * us          # simulated work per request
CAPACITY = 48                    # admission gate capacity (in-flight)
HIGH_CLIENTS = 8                 # fixed high-priority population
LOW_SWEEP = [16, 32, 64, 128, 256, 512] if is_full() else [16, 64, 256]
POOL_SIZE = 4                    # wire connections per (node, service) pool
WARMUP = 2 * ms
MEASURE = 10 * ms
COOLDOWN = 0.5 * ms
CORES = 28                       # NodeSpec default, for the oversub claim

_COUNTER = [0]


def _gen():
    _COUNTER[0] += 1
    return load_idl(IDL, f"overload_bench_gen_{_COUNTER[0]}")


class Handler:
    def __init__(self, tb):
        self.tb = tb

    def HighOp(self, k):
        yield self.tb.sim.timeout(HANDLER_TIME)
        return k

    def LowOp(self, k):
        yield self.tb.sim.timeout(HANDLER_TIME)
        return k


def _plan(gen):
    """The hinted plan with every RDMA channel forced onto eager_sendrecv
    (the protocol the SRQ server path serves) and a pipelined window.
    Routes -- and with them the resolved priority hints -- are untouched."""
    plan = service_plan_of(gen, SERVICE, pipeline=True)
    channels = tuple(
        replace(ch, protocol="eager_sendrecv", window=16)
        if ch.transport == "rdma" else ch
        for ch in plan.channels)
    return replace(plan, channels=channels)


def _run_point(n_low, n_high=HIGH_CLIENTS):
    """One sweep point; returns per-class goodput and aggregate fault/gate
    counters."""
    gen = _gen()
    tb = Testbed(n_nodes=4)
    plan = _plan(gen)
    gate_cfg = AdmissionConfig(capacity=CAPACITY, low_fraction=0.25,
                               normal_fraction=0.8,
                               retry_after_base=200 * us)
    server = HatRpcServer(tb.node(0), gen, SERVICE, Handler(tb), plan=plan,
                          admission=gate_cfg, srq=True, srq_slots=512)
    server.start()

    run = PhasedRun(tb.sim, name=f"overload.low{n_low}", warmup=WARMUP,
                    measurement=MEASURE, cooldown=COOLDOWN)
    client_nodes = [1, 2, 3]
    pools = []
    engines = []

    def make_pool(node_idx, seed):
        budget = RetryBudget(tb.sim, cap=16.0, refill_rate=1000.0)
        pool = MuxPool(tb.node(node_idx), gen, SERVICE, size=POOL_SIZE,
                       plan=plan, rng=random.Random(seed),
                       retry_budget=budget, deadline=5 * ms,
                       retry_policy=RetryPolicy(max_attempts=3,
                                                base_backoff=50 * us,
                                                jitter=0.1))
        pools.append(pool)
        return pool

    procs = []

    def logical(pool, fn, cls):
        lease = pool.lease()
        while not run.stopped:
            t0 = tb.sim.now
            try:
                yield from lease.call(fn, "k")
                run.record(cls, tb.sim.now - t0, start=t0)
            except TRejectedException as exc:
                # honor the advice before offering the request again
                yield tb.sim.timeout(max(exc.retry_after, 100 * us))
        lease.release()

    def prepare():
        low_pools = [make_pool(n, 10 + n) for n in client_nodes]
        high_pool = make_pool(1, 99)
        for pool in pools:
            yield from pool.connect(tb.node(0))
        engines.extend(e for pool in pools for e in pool.engines)
        procs.extend(tb.sim.process(logical(high_pool, "HighOp", "high"))
                     for _ in range(n_high))
        procs.extend(tb.sim.process(logical(low_pools[i % 3], "LowOp", "low"))
                     for i in range(n_low))

    driver = tb.sim.process(run.drive(prepare=prepare()))
    tb.sim.run(until=driver)
    if procs:
        tb.sim.run(until=AllOf(tb.sim, procs))
    for p in procs:
        p.value  # surface any client failure instead of undercounting
    run.stop()
    tb.sim.run()
    run.emit_phase_records("overloadph",
                           config={"n_low": n_low, "n_high": n_high,
                                   "capacity": CAPACITY})

    meas = run.stats[Phase.MEASUREMENT]
    duration = run.window(Phase.MEASUREMENT).duration

    def goodput(cls):
        st = meas.get(cls)
        return (st.count if st is not None else 0) / duration

    gate = server.gate
    faults = {"timeouts": sum(e.faults.timeouts for e in engines),
              "rejections": sum(e.faults.rejections for e in engines),
              "budget_exhausted": sum(e.faults.budget_exhausted
                                      for e in engines)}
    return {
        "high_goodput": goodput("high"),
        "low_goodput": goodput("low"),
        "total_goodput": goodput("high") + goodput("low"),
        "faults": faults,
        "shed": dict(gate.shed_by_priority),
        "gate_high_water": gate.high_water,
    }


def _run():
    out = {"uncontended": _run_point(0)}
    for n_low in LOW_SWEEP:
        out[n_low] = _run_point(n_low)
    return out


def test_overload_graceful_degradation(benchmark):
    res = benchmark.pedantic(_run, rounds=1, iterations=1)
    base_high = res["uncontended"]["high_goodput"]
    fmt_rows(
        f"Overload sweep: {HIGH_CLIENTS} high-pri clients + N low-pri over "
        f"{CORES}-core server, gate capacity {CAPACITY}",
        ["low clients", "total goodput", "high goodput", "low goodput",
         "rejections", "shed low", "shed high"],
        [[n, kops(r["total_goodput"]), kops(r["high_goodput"]),
          kops(r["low_goodput"]), r["faults"]["rejections"],
          r["shed"]["low"], r["shed"]["high"]]
         for n, r in res.items() if n != "uncontended"])
    print(f"   uncontended high-pri goodput: {kops(base_high)}")

    benchmark.extra_info["goodput_kops"] = {
        str(n): round(r["total_goodput"] / 1e3, 1)
        for n, r in res.items()}
    emit_bench("overload", "graceful_degradation",
               {**{f"total_goodput_kops.{n}":
                   metric(round(res[n]["total_goodput"] / 1e3, 2),
                          unit="kops", better="higher")
                   for n in LOW_SWEEP},
                "high_goodput_retention":
                    metric(round(min(res[n]["high_goodput"]
                                     for n in LOW_SWEEP) / base_high, 3),
                           unit="ratio", better="higher")},
               config={"low_sweep": LOW_SWEEP, "high_clients": HIGH_CLIENTS,
                       "capacity": CAPACITY, "pool_size": POOL_SIZE,
                       "handler_us": HANDLER_TIME / us})

    # -- the three graceful-degradation guarantees ---------------------------
    peak = max(res[n]["total_goodput"] for n in LOW_SWEEP)
    for n in LOW_SWEEP:
        r = res[n]
        # 1. plateau, not collapse: every point holds >= 0.8x peak.
        assert r["total_goodput"] >= 0.8 * peak, (
            f"{n} low clients: goodput {r['total_goodput']:.0f}/s collapsed "
            f"below 0.8x peak {peak:.0f}/s")
        # 2. overload is typed rejection, never timeout.
        assert r["faults"]["timeouts"] == 0, (
            f"{n} low clients: {r['faults']['timeouts']} TIMED_OUT errors")
        # 3. shed order: high never shed while low is.
        assert r["shed"]["high"] == 0
        # high-priority goodput within 10% of its uncontended level.
        assert r["high_goodput"] >= 0.9 * base_high, (
            f"{n} low clients: high-pri goodput {r['high_goodput']:.0f}/s "
            f"fell >10% below uncontended {base_high:.0f}/s")
    heavy = res[LOW_SWEEP[-1]]
    assert LOW_SWEEP[-1] + HIGH_CLIENTS > CORES  # genuinely oversubscribed
    assert heavy["faults"]["rejections"] > 0     # the gate actually engaged
    assert heavy["shed"]["low"] > 0              # ...by shedding low first
