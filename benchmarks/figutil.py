"""Shared helpers for the paper-figure benchmarks.

Every benchmark runs the corresponding simulated experiment once under
``benchmark.pedantic`` (real time measures simulator cost; the *reproduced
metrics* are simulated and land in ``benchmark.extra_info`` and on stdout
as paper-style rows).

Scale: set ``REPRO_BENCH_SCALE=full`` for the paper's full parameter grids;
the default ``small`` grid keeps the whole suite in a few minutes.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List

from repro.sim.units import KiB, us

__all__ = ["SCALE", "fmt_rows", "is_full", "kops", "pct_gain", "usec"]

SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")


def is_full() -> bool:
    return SCALE == "full"


def usec(seconds: float) -> str:
    return f"{seconds / us:9.2f}us"


def kops(ops_per_sec: float) -> str:
    return f"{ops_per_sec / 1e3:9.1f}k"


def pct_gain(base: float, improved: float) -> str:
    """Relative improvement of `improved` over `base` (both 'smaller=better'
    or pass throughputs swapped)."""
    if base <= 0:
        return "   n/a"
    return f"{(base - improved) / base * 100:+6.1f}%"


def fmt_rows(title: str, header: List[str], rows: Iterable[List[str]]) -> str:
    lines = [f"\n== {title} =="]
    widths = [max(len(h), 12) for h in header]
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    out = "\n".join(lines)
    print(out)
    return out
