"""Shared helpers for the paper-figure benchmarks.

Every benchmark runs the corresponding simulated experiment once under
``benchmark.pedantic`` (real time measures simulator cost; the *reproduced
metrics* are simulated and land in ``benchmark.extra_info`` and on stdout
as paper-style rows).

Scale: set ``REPRO_BENCH_SCALE=full`` for the paper's full parameter grids;
the default ``small`` grid keeps the whole suite in a few minutes.

Every figure also emits a machine-readable :class:`~repro.bench.BenchRecord`
via :func:`emit_bench`; the process-wide sink flushes them to
``BENCH_<scale>.json`` (or ``$REPRO_BENCH_OUT``) at exit, which is what
``scripts/check_bench_regression.py`` consumes in CI.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional

from repro.bench.report import SINK, BenchRecord, metric
from repro.sim.units import KiB, us

__all__ = ["SCALE", "emit_bench", "fmt_rows", "is_full", "kops",
           "lat_metric", "pct_gain", "tput_metric", "usec"]

SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")


def lat_metric(seconds: float) -> Dict[str, object]:
    """A latency metric in microseconds (lower is better)."""
    return metric(round(seconds / us, 3), unit="us", better="lower")


def tput_metric(ops_per_sec: float) -> Dict[str, object]:
    """A throughput metric in kops/s (higher is better)."""
    return metric(round(ops_per_sec / 1e3, 2), unit="kops", better="higher")


def emit_bench(figure: str, name: str, metrics: Dict[str, Dict[str, object]],
               config: Optional[Dict[str, object]] = None,
               **meta: object) -> BenchRecord:
    """Queue one benchmark record on the process-wide sink.

    ``metrics`` values come from :func:`lat_metric` / :func:`tput_metric` /
    :func:`repro.bench.metric`.  The sink flushes at interpreter exit (or
    explicitly from ``scripts/run_all_figures.py``).
    """
    rec = BenchRecord(figure=figure, name=name, scale=SCALE,
                      config=dict(config or {}), metrics=dict(metrics),
                      meta=dict(meta))
    SINK.add(rec)
    return rec


def is_full() -> bool:
    return SCALE == "full"


def usec(seconds: float) -> str:
    return f"{seconds / us:9.2f}us"


def kops(ops_per_sec: float) -> str:
    return f"{ops_per_sec / 1e3:9.1f}k"


def pct_gain(base: float, improved: float) -> str:
    """Relative improvement of `improved` over `base` (both 'smaller=better'
    or pass throughputs swapped)."""
    if base <= 0:
        return "   n/a"
    return f"{(base - improved) / base * 100:+6.1f}%"


def fmt_rows(title: str, header: List[str], rows: Iterable[List[str]]) -> str:
    lines = [f"\n== {title} =="]
    widths = [max(len(h), 12) for h in header]
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    out = "\n".join(lines)
    print(out)
    return out
