"""Figure 11: service-level hints -- ATB latency vs pinned baselines.

HatRPC (hints: perf_goal=latency, concurrency=1) against Thrift pinned to
Hybrid-EagerRNDV / Direct-Write-Send / RFP / Direct-WriteIMM, across
payload sizes.  Shape: HatRPC tracks the best protocol (Direct-WriteIMM)
within a few percent and beats Hybrid-EagerRNDV by tens of percent.
"""

import pytest

from benchmarks.figutil import (emit_bench, fmt_rows, is_full, lat_metric,
                                pct_gain, usec)
from repro.atb import LatencyBenchmark
from repro.sim.units import KiB

MODES = ["hatrpc", "hybrid_eager_rndv", "direct_write_send", "rfp",
         "direct_writeimm"]
SIZES = ([4, 64, 512, 4 * KiB, 32 * KiB, 128 * KiB, 512 * KiB]
         if is_full() else [512, 4 * KiB, 128 * KiB])


def _run():
    out = {}
    for mode in MODES:
        for size in SIZES:
            stats = LatencyBenchmark(mode=mode, payload=size, iters=12,
                                     warmup=3).run()
            out[(mode, size)] = stats.mean
    return out


def test_fig11_service_hint_latency(benchmark):
    lat = benchmark.pedantic(_run, rounds=1, iterations=1)
    fmt_rows("Fig. 11: ATB latency, service-level hints",
             ["mode"] + [f"{s}B" for s in SIZES],
             [[m] + [usec(lat[(m, s)]) for s in SIZES] for m in MODES])
    fmt_rows("Fig. 11: HatRPC improvement over each baseline",
             ["baseline"] + [f"{s}B" for s in SIZES],
             [[m] + [pct_gain(lat[(m, s)], lat[("hatrpc", s)])
                     for s in SIZES] for m in MODES[1:]])
    benchmark.extra_info["latency_us"] = {
        f"{m}/{s}": round(v * 1e6, 2) for (m, s), v in lat.items()}
    emit_bench("fig11", "service_hint_latency",
               {f"latency_us.{m}.{s}": lat_metric(v)
                for (m, s), v in lat.items()},
               config={"modes": MODES, "sizes": SIZES,
                       "iters": 12, "warmup": 3})

    small = 512
    # Paper: 37-54% improvement over Hybrid-EagerRNDV for <=4KB payloads.
    gain = (lat[("hybrid_eager_rndv", small)] - lat[("hatrpc", small)]) \
        / lat[("hybrid_eager_rndv", small)]
    assert 0.25 < gain < 0.70
    # Paper: within 3% of Direct-WriteIMM (we allow 5%).
    assert lat[("hatrpc", small)] == pytest.approx(
        lat[("direct_writeimm", small)], rel=0.05)
    # Large payloads: still ahead of Hybrid-EagerRNDV (paper: 20-51%).
    big = max(SIZES)
    assert lat[("hatrpc", big)] < lat[("hybrid_eager_rndv", big)]
