"""Phased YCSB-B over the sharded cluster: the full observability stack.

One long(ish) run exercising everything the phased harness composes:

* a 2-shard HatKV cluster with admission control and *stale* declared
  concurrency hints (4, vs ~96 observed engines) so the shared
  :class:`~repro.core.tuner.HintTuner` provably switches polling modes
  mid-run -- every decision lands as a ``tuner_decision`` annotation;
* a :class:`~repro.obs.timeseries.MetricsSampler` streaming JSONL
  samples (phase-tagged) with counter rates, histogram percentile
  deltas, and the live ``hatkv.keys.shard<i>`` balance probe;
* an :class:`~repro.bench.harness.StormSpec` placed 1 ms into the
  MEASUREMENT window: 96 background clients slam the gate, the
  rejection-rate series yields ``admission_shed_start/end`` wave
  annotations, and the GET p99 SLO (50 us sustained 300 us, scoped to
  the measurement phase) fires **exactly one** sustained violation that
  recovers when the storm ends;
* per-phase BenchRecords whose MEASUREMENT numbers provably exclude
  warmup (ops are attributed to the phase they *started* in).

The scenario itself comes off a one-cell
:class:`~repro.bench.harness.ScenarioMatrix` -- the same front end a
skew x value-size x storm sweep would use.
"""

import json
import os
import tempfile

import pytest

from benchmarks.figutil import emit_bench, fmt_rows, kops, tput_metric
from repro import obs
from repro.bench import (Phase, PhasedRun, ScenarioMatrix, StormSpec,
                         metric)
from repro.core.overload import AdmissionConfig
from repro.core.tuner import HintTuner, TunerConfig
from repro.hatkv import ShardedKVCluster
from repro.obs import JsonlSink, MetricsRegistry, MetricsSampler, SloSpec, \
    SloWatchdog, read_stream
from repro.sim.units import ms, us
from repro.testbed import Testbed
from repro.ycsb import WORKLOAD_B, run_ycsb_phased, scenario_spec

SHARDS = 2
N_CLIENTS = 48
N_CLIENT_NODES = 8
DECLARED_CONCURRENCY = 4         # deliberately stale: the tuner must switch
CAPACITY = 16                    # admission gate capacity per shard
WARMUP = 1 * ms
MEASURE = 4 * ms
COOLDOWN = 0.5 * ms
SAMPLE_EVERY = 100 * us
SLO_GET_P99 = 50 * us
SLO_SUSTAIN = 300 * us
VNODES = 256
RING_SEED = 3

#: One matrix cell: default skew/value-size, with a mid-measurement storm.
MATRIX = ScenarioMatrix(
    skews=[0.99], value_sizes=[100],
    storms=[StormSpec(at=1 * ms, duration=1.5 * ms, clients=96)])


def _stream_path() -> str:
    """CI sets REPRO_STREAM_OUT to keep the stream as an artifact."""
    out = os.environ.get("REPRO_STREAM_OUT")
    if out:
        return out
    return os.path.join(tempfile.gettempdir(), "phased_ycsb_stream.jsonl")


def _run():
    scenario = MATRIX.scenarios()[0]
    spec = scenario_spec(WORKLOAD_B, scenario)
    reg = MetricsRegistry()
    with obs.installed(reg):
        tb = Testbed(n_nodes=SHARDS + 9)
        cluster = ShardedKVCluster(
            tb, SHARDS, concurrency=DECLARED_CONCURRENCY, vnodes=VNODES,
            ring_seed=RING_SEED, admission=AdmissionConfig(capacity=CAPACITY),
            tunable=True).start()
        sampler = MetricsSampler(tb.sim, reg, interval=SAMPLE_EVERY,
                                 sink=JsonlSink(_stream_path()))
        run = PhasedRun(tb.sim, name=f"ycsb_b/{scenario.name}",
                        warmup=WARMUP, measurement=MEASURE,
                        cooldown=COOLDOWN, registry=reg, sampler=sampler)
        watchdog = SloWatchdog(
            [SloSpec("get-p99", "bench.op_latency.get.p99", "<", SLO_GET_P99,
                     sustain=SLO_SUSTAIN, phases=(Phase.MEASUREMENT.value,),
                     description="GET tail under storm")],
            registry=reg).attach(sampler)
        tuner = HintTuner(TunerConfig(concurrency_source="observed",
                                      epoch_samples=32, min_samples=16,
                                      confirm_epochs=2))
        run.watch_tuner(tuner)
        for s in cluster.servers:
            run.watch_admission(s.rpc.gate, label=f"shard{s.shard}")

        def connect(node):
            router = yield from cluster.connect(node, tunable=True,
                                                tuner=tuner)
            return router

        run_ycsb_phased(cluster, connect, spec, testbed=tb, run=run,
                        n_clients=N_CLIENTS, n_client_nodes=N_CLIENT_NODES,
                        storm=scenario.storm)
    report = watchdog.report()
    slo_out = os.environ.get("REPRO_SLO_REPORT")
    if slo_out:
        with open(slo_out, "w") as f:
            json.dump(report, f, indent=2)
    return run, watchdog, tuner, list(read_stream(_stream_path()))


def test_phased_ycsb_b_storm(benchmark):
    run, watchdog, tuner, stream = benchmark.pedantic(
        _run, rounds=1, iterations=1)

    samples = [r for r in stream if r.get("type") == "sample"]
    kinds = {}
    for r in stream:
        if r.get("type") == "event":
            kinds[r["kind"]] = kinds.get(r["kind"], 0) + 1
    violations = watchdog.violations

    fmt_rows(f"Phased YCSB-B ({SHARDS} shards, {N_CLIENTS} clients, "
             f"storm {MATRIX.storms[0].clients} clients mid-measurement)",
             ["phase", "ops", "throughput"],
             [[w.phase.value, run.ops(w.phase),
               kops(run.throughput(w.phase))] for w in run.windows])
    fmt_rows("Stream + SLO digest",
             ["samples", "tuner switches", "shed waves", "violations"],
             [[len(samples), kinds.get("tuner_decision", 0),
               kinds.get("admission_shed_start", 0), len(violations)]])

    benchmark.extra_info["annotations"] = kinds
    run.emit_phase_records("phased", "ycsb_b_storm",
                           config=MATRIX.scenarios()[0].config())
    emit_bench("phased", "ycsb_b_storm_stream",
               {"tput_kops.measurement":
                    tput_metric(run.throughput(Phase.MEASUREMENT)),
                "stream_samples": metric(len(samples), unit="samples",
                                         better="none"),
                "tuner_decisions": metric(
                    kinds.get("tuner_decision", 0), unit="events",
                    better="none"),
                "slo_violations": metric(len(violations), unit="events",
                                         better="none")},
               config={"shards": SHARDS, "n_clients": N_CLIENTS,
                       "declared_concurrency": DECLARED_CONCURRENCY,
                       "capacity": CAPACITY,
                       "slo_get_p99_us": SLO_GET_P99 / us})

    # -- the acceptance gates ------------------------------------------------
    # Phase attribution: every recorded op landed in a known phase, warmup
    # did real work, and MEASUREMENT throughput counts only its own ops.
    assert run.unattributed == 0
    assert run.ops(Phase.WARMUP) > 0
    assert run.ops(Phase.MEASUREMENT) > 0
    meas = run.window(Phase.MEASUREMENT)
    assert meas.duration == pytest.approx(MEASURE)
    # The live stream: phase-tagged samples at the configured cadence.
    assert len(samples) >= 20, f"only {len(samples)} samples streamed"
    assert all("phase" in r["tags"] for r in samples)
    # Stale declared hints + observed concurrency -> the tuner switched,
    # and every switch is annotated in the stream.
    assert kinds.get("tuner_decision", 0) >= 1
    assert any(d.kind == "switch" for d in tuner.decisions)
    # The storm registered: armed at MEASUREMENT entry, shed wave seen.
    assert kinds.get("storm_armed", 0) == 1
    assert kinds.get("storm_start", 0) == 1 and kinds.get("storm_end", 0) == 1
    assert kinds.get("admission_shed_start", 0) >= 1
    # Exactly one sustained SLO violation, attributed to MEASUREMENT, and
    # it recovered once the storm drained.
    assert len(violations) == 1, [v.slo for v in violations]
    v = violations[0]
    assert v.phase == Phase.MEASUREMENT.value
    assert meas.start <= v.t < meas.end
    assert v.recovered_t is not None and v.recovered_t > v.t
    assert not watchdog.report()["ok"]
    # Live key-balance probe made it into the stream (fresh, not stale).
    last = samples[-1]["metrics"]
    shard_keys = [last.get(f"hatkv.keys.shard{i}") for i in range(SHARDS)]
    assert all(k is not None and k > 0 for k in shard_keys)
