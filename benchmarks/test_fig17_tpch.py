"""Figure 17: TPC-H over vanilla Thrift/IPoIB vs HatRPC-Service/-Function.

All 22 queries on the distributed executor (1 coordinator + 9 workers),
varying only the RPC transport.  Shape: HatRPC reduces total execution
time (paper: 1.27x overall for -Function, up to 1.51x per query); queries
dominated by local compute show the smallest gains.
"""

import pytest

from benchmarks.figutil import emit_bench, fmt_rows, is_full
from repro.bench import metric
from repro.tpch.distributed import DistributedTpch

MODES = ["ipoib", "hatrpc_service", "hatrpc_function"]
SF = 0.01 if is_full() else 0.005


def _run():
    out = {}
    for mode in MODES:
        ex = DistributedTpch(mode=mode, sf=SF, n_workers=9, seed=1).start()
        out[mode] = {q: ex.run_query(q) for q in range(1, 23)}
    return out


def test_fig17_tpch(benchmark):
    res = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = []
    for q in range(1, 23):
        ipo = res["ipoib"][q].elapsed
        svc = res["hatrpc_service"][q].elapsed
        fn = res["hatrpc_function"][q].elapsed
        rows.append([f"Q{q:02d}", f"{ipo * 1e3:9.3f}ms",
                     f"{svc * 1e3:9.3f}ms", f"{fn * 1e3:9.3f}ms",
                     f"x{ipo / fn:.2f}"])
    totals = {m: sum(r.elapsed for r in res[m].values()) for m in MODES}
    rows.append(["TOTAL", f"{totals['ipoib'] * 1e3:9.3f}ms",
                 f"{totals['hatrpc_service'] * 1e3:9.3f}ms",
                 f"{totals['hatrpc_function'] * 1e3:9.3f}ms",
                 f"x{totals['ipoib'] / totals['hatrpc_function']:.2f}"])
    fmt_rows(f"Fig. 17: TPC-H execution time (SF={SF}, 9 workers)",
             ["query", "Thrift/IPoIB", "HatRPC-Service", "HatRPC-Function",
              "F speedup"], rows)
    benchmark.extra_info["speedup_function_vs_ipoib"] = round(
        totals["ipoib"] / totals["hatrpc_function"], 3)
    benchmark.extra_info["exchange_bytes_total"] = sum(
        r.exchange_bytes for r in res["hatrpc_function"].values())
    metrics = {f"total_ms.{m}": metric(round(totals[m] * 1e3, 3), unit="ms",
                                       better="lower") for m in MODES}
    metrics["speedup_function_vs_ipoib"] = metric(
        round(totals["ipoib"] / totals["hatrpc_function"], 3),
        unit="x", better="higher")
    emit_bench("fig17", "tpch", metrics,
               config={"modes": MODES, "sf": SF, "n_workers": 9, "seed": 1})

    # Overall speedup in the paper's ballpark (1.27x total; we accept a
    # wide band since the compute/comm split depends on the cost model).
    overall = totals["ipoib"] / totals["hatrpc_function"]
    assert 1.05 < overall < 1.6
    # HatRPC-Service already beats IPoIB; -Function is at least as good.
    assert totals["hatrpc_service"] < totals["ipoib"]
    assert totals["hatrpc_function"] <= totals["hatrpc_service"] * 1.02
    # Every query must return correct results regardless of transport.
    for q in range(1, 23):
        a = res["ipoib"][q].result
        b = res["hatrpc_function"][q].result
        assert a.names == b.names and len(a) == len(b), q
