"""Figure 5: multi-client throughput of the RDMA protocols.

Small (512 B) and large (128 KB) messages across subscription regimes under
both polling disciplines.  Shape checks: busy polling collapses past
over-subscription while event polling scales; Direct-WriteIMM leads small
messages; RFP overtakes Direct-WriteIMM for large messages at scale.
"""

import pytest

from benchmarks.figutil import emit_bench, fmt_rows, is_full, kops, tput_metric
from repro.bench import ProtoBenchSpec, run_protocol_bench
from repro.sim.units import KiB
from repro.verbs.cq import PollMode

PROTOCOLS = ["eager_sendrecv", "direct_write_send", "chained_write_send",
             "write_rndv", "read_rndv", "direct_writeimm",
             "pilaf", "farm", "rfp"]
CLIENTS = [1, 4, 16, 64, 128, 256] if is_full() else [4, 16, 64]
SIZES = [512, 128 * KiB]


def _run():
    out = {}
    for mode in (PollMode.BUSY, PollMode.EVENT):
        for size in SIZES:
            iters = 15 if size == 512 else 10
            for proto in PROTOCOLS:
                for nc in CLIENTS:
                    r = run_protocol_bench(ProtoBenchSpec(
                        proto, payload=size, n_clients=nc, iters=iters,
                        warmup=3, poll_mode=mode))
                    out[(mode.value, size, proto, nc)] = r.throughput_ops
    return out


def test_fig05_protocol_throughput(benchmark):
    tput = benchmark.pedantic(_run, rounds=1, iterations=1)
    for mode in ("busy", "event"):
        for size in SIZES:
            fmt_rows(
                f"Fig. 5 ({mode} polling, {size}B): throughput (ops/s)",
                ["protocol"] + [f"{c} clients" for c in CLIENTS],
                [[p] + [kops(tput[(mode, size, p, c)]) for c in CLIENTS]
                 for p in PROTOCOLS])
    benchmark.extra_info["throughput_kops"] = {
        f"{m}/{s}/{p}/{c}": round(v / 1e3, 1)
        for (m, s, p, c), v in tput.items()}
    emit_bench("fig05", "protocol_throughput",
               {f"throughput_kops.{m}.{s}.{p}.{c}": tput_metric(v)
                for (m, s, p, c), v in tput.items()},
               config={"protocols": PROTOCOLS, "clients": CLIENTS,
                       "sizes": SIZES})

    big_c = CLIENTS[-1]
    # Busy polling collapse at over-subscription (512B).
    assert tput[("event", 512, "direct_writeimm", big_c)] > \
        tput[("busy", 512, "direct_writeimm", big_c)]
    # Direct-WriteIMM leads small messages under event polling at scale.
    dwi = tput[("event", 512, "direct_writeimm", big_c)]
    assert dwi >= tput[("event", 512, "rfp", big_c)]
    # RFP overtakes for 128KB at scale (the S5.2 switch point).
    assert tput[("event", 128 * KiB, "rfp", big_c)] > \
        tput[("event", 128 * KiB, "direct_writeimm", big_c)]
