"""Figure 15: HatKV vs emulated comparators on YCSB workload A.

Six candidates over one shared LMDB backend (Section 5.4): HatRPC-Service,
HatRPC-Function, AR-gRPC, HERD, Pilaf, RFP.  Reported per system: total
throughput plus per-operation mean latency (the figure's two panels).

Known deviation (see EXPERIMENTS.md): with a single-writer LMDB and this
write-heavy mix, the backend writer -- not communication -- bounds
throughput at scale, so the throughput separations are smaller than the
paper's; the latency panel's ordering (HatKV lowest, HERD worst MultiGET,
Pilaf/RFP costly GETs) reproduces.

Each system runs on the phased harness (WARMUP -> MEASUREMENT -> COOLDOWN
on sim time): the headline numbers come from the MEASUREMENT window only,
with ops attributed to the phase they *started* in, and every phase is
emitted as its own ``fig15ph`` BenchRecord for the regression gate.
"""

import pytest

from benchmarks.figutil import (emit_bench, fmt_rows, is_full, kops,
                                lat_metric, tput_metric, usec)
from repro.bench import PhasedRun
from repro.emul import start_system
from repro.sim.units import us
from repro.testbed import Testbed
from repro.ycsb import (OpType, WORKLOAD_A, measurement_result,
                        run_ycsb_phased)

SYSTEMS = ["hatkv_function", "hatkv_service", "ar_grpc", "herd", "pilaf",
           "rfp"]
N_CLIENTS = 128 if is_full() else 48
WARMUP = 250 * us
MEASURE = 1000 * us if is_full() else 600 * us
COOLDOWN = 80 * us


def _run():
    out = {}
    for system in SYSTEMS:
        tb = Testbed(n_nodes=5)
        server, connect = start_system(tb, system, n_clients=N_CLIENTS)
        run = PhasedRun(tb.sim, name=f"ycsb_a.{system}", warmup=WARMUP,
                        measurement=MEASURE, cooldown=COOLDOWN)
        run_ycsb_phased(server, connect, WORKLOAD_A, testbed=tb, run=run,
                        n_clients=N_CLIENTS)
        run.emit_phase_records("fig15ph", config={"system": system,
                                                  "n_clients": N_CLIENTS})
        out[system] = measurement_result(run)
    return out


def test_fig15_ycsb_a(benchmark):
    res = benchmark.pedantic(_run, rounds=1, iterations=1)
    fmt_rows(f"Fig. 15a: YCSB-A throughput ({N_CLIENTS} clients, "
             f"{MEASURE / us:.0f}us measured window)",
             ["system", "throughput"],
             [[s, kops(res[s].throughput_ops)] for s in SYSTEMS])
    fmt_rows("Fig. 15b: YCSB-A mean latency per op",
             ["system"] + [op.value for op in OpType],
             [[s] + [usec(res[s].latency(op).mean)
                     if res[s].latency(op).samples else "      n/a"
                     for op in OpType] for s in SYSTEMS])
    benchmark.extra_info["throughput_kops"] = {
        s: round(r.throughput_ops / 1e3, 1) for s, r in res.items()}
    metrics = {}
    for s, r in res.items():
        metrics[f"tput_kops.{s}"] = tput_metric(r.throughput_ops)
        for op in OpType:
            if r.latency(op).samples:
                metrics[f"lat_us.{s}.{op.value}"] = \
                    lat_metric(r.latency(op).mean)
    emit_bench("fig15", "ycsb_a", metrics,
               config={"systems": SYSTEMS, "n_clients": N_CLIENTS,
                       "warmup_us": WARMUP / us, "measure_us": MEASURE / us})

    # Latency-panel orderings from the paper.
    hat = res["hatkv_function"]
    assert hat.latency(OpType.GET).mean < \
        res["pilaf"].latency(OpType.GET).mean
    assert hat.latency(OpType.MULTI_GET).mean < \
        res["herd"].latency(OpType.MULTI_GET).mean
    # HatKV throughput is never behind the comparators by a real margin.
    for s in ("herd", "pilaf"):
        assert hat.throughput_ops > res[s].throughput_ops * 0.9, s
