"""Figure 6: the hint -> RDMA protocol design-space mapping.

Not a timing figure: the table itself is the artifact.  The bench
enumerates the (perf_goal x concurrency x payload) grid, prints the
selected (protocol, polling) cell for each, and asserts the mapping's
Figure 6 structure.
"""

import pytest

from benchmarks.figutil import emit_bench, fmt_rows
from repro.bench import metric
from repro.core.hints import resolve_hints
from repro.core.selector import select_protocol
from repro.sim.units import KiB

GOALS = ["latency", "throughput", "res_util"]
CONCURRENCY = [1, 8, 16, 17, 28, 29, 64, 512]
PAYLOADS = [64, 512, 4 * KiB, 8 * KiB, 48 * KiB, 64 * KiB, 512 * KiB]


def _select(goal, conc, payload):
    hints = resolve_hints({"shared": {"perf_goal": goal,
                                      "concurrency": conc,
                                      "payload_size": payload}}, None,
                          "server")
    return select_protocol(hints)


def _run():
    return {(g, c, p): _select(g, c, p)
            for g in GOALS for c in CONCURRENCY for p in PAYLOADS}


def test_fig06_selector_map(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)
    for goal in GOALS:
        fmt_rows(
            f"Fig. 6 mapping, perf_goal={goal} (protocol/polling)",
            ["concurrency"] + [f"{p}B" for p in PAYLOADS],
            [[str(c)] + [
                f"{table[(goal, c, p)].protocol}/"
                f"{table[(goal, c, p)].poll_mode.value}"
                for p in PAYLOADS] for c in CONCURRENCY])
    benchmark.extra_info["cells"] = len(table)
    emit_bench("fig06", "selector_map",
               {"cells": metric(len(table), unit="cells", better="none"),
                "rfp_cells": metric(
                    sum(1 for ch in table.values() if ch.protocol == "rfp"),
                    unit="cells", better="none")},
               config={"goals": GOALS, "concurrency": CONCURRENCY,
                       "payloads": PAYLOADS})

    # Structure of the mapping.
    for c in CONCURRENCY:
        for p in PAYLOADS:
            lat = table[("latency", c, p)]
            assert lat.protocol == "direct_writeimm"
            assert lat.poll_mode.value == "busy"
    # Small-message throughput is always Direct-WriteIMM.
    for c in CONCURRENCY:
        assert table[("throughput", c, 512)].protocol == "direct_writeimm"
    # The RFP switch needs BOTH >16 concurrency and very large payloads.
    assert table[("throughput", 64, 512 * KiB)].protocol == "rfp"
    assert table[("throughput", 8, 512 * KiB)].protocol == "direct_writeimm"
    assert table[("throughput", 64, 8 * KiB)].protocol == "direct_writeimm"
    # res_util converges to eager/rendezvous at scale, event polling.
    assert table[("res_util", 64, 512)].protocol == "eager_sendrecv"
    assert table[("res_util", 64, 64 * KiB)].protocol == "write_rndv"
    assert all(table[("res_util", c, p)].poll_mode.value == "event"
               for c in CONCURRENCY for p in PAYLOADS)
