"""Closed-loop hint tuning: online re-selection beats any static hint.

The workload shifts concurrency mid-run -- a handful of early clients
(phase A), then a large late wave (phase B) -- which moves the optimal
Figure-6 choice from busy polling (low contention: every wakeup saved is
latency won) to event polling (high contention: 128 busy pollers vs a
28-core server is a throughput collapse).  No *static* declared hint can
win both phases:

* ``concurrency = 4`` declared: busy polling -- fast phase A, slow phase B;
* ``concurrency = 64`` declared: event polling -- slow phase A, fast
  phase B;
* the **tuner** starts from the first (declared hints are the starting
  point), observes the client wave, re-runs the selector with the observed
  concurrency, and converges onto the event-polled alternate channel --
  taking (close to) the best of both phases.

Gates: the tuned run beats the best static config end-to-end; it converges
in at most two plan epochs (one switch, no flapping); a steady workload
produces zero switches; static runs carry zero tuner bytes on the wire
(the server never sees an epoch frame).
"""

import pytest

from benchmarks.figutil import emit_bench, fmt_rows, is_full, kops
from repro.bench import metric
from repro.core.runtime import HatRpcServer, hatrpc_connect
from repro.core.tuner import HintTuner, TunerConfig
from repro.idl import load_idl
from repro.verbs.cq import PollMode

from repro.testbed import Testbed

IDL = """
service PhaseSvc {{
    binary Echo(1: binary blob) [
        hint: perf_goal = throughput, concurrency = {conc};
    ]
}}
"""

SERVICE = "PhaseSvc"
PAYLOAD = 512
N_EARLY = 4
N_LATE = 192 if is_full() else 128
OPS_EARLY = 240 if is_full() else 120
OPS_LATE = 80 if is_full() else 40

_COUNTER = [0]


def _gen(conc):
    _COUNTER[0] += 1
    return load_idl(IDL.format(conc=conc), f"tuner_bench_gen_{_COUNTER[0]}")


class Handler:
    def Echo(self, blob):
        return blob


def _run_config(declared_conc, tuned, steady=False):
    """One full phase-shift run; returns timings + tuner/server state."""
    gen = _gen(declared_conc)
    tb = Testbed(n_nodes=2)
    server = HatRpcServer(tb.node(1), gen, SERVICE, Handler(),
                          tunable=tuned).start()
    tuner = None
    if tuned:
        # Observed concurrency: the tuner re-resolves with the live client
        # count (one bound engine per connection), not the declared hint.
        tuner = HintTuner(TunerConfig(concurrency_source="observed",
                                      epoch_samples=32, min_samples=16,
                                      confirm_epochs=2))
    blob = b"x" * PAYLOAD
    done = []

    def client(ops):
        stub = yield from hatrpc_connect(tb.node(0), tb.node(1), gen,
                                         SERVICE, tuner=tuner)
        for _ in range(ops):
            r = yield from stub.Echo(blob)
            assert len(r) == PAYLOAD
        done.append(1)

    marks = {}

    def driver():
        t0 = tb.sim.now
        early = [tb.sim.process(client(OPS_EARLY)) for _ in range(N_EARLY)]
        for p in early:
            yield p
        marks["phase_a"] = tb.sim.now - t0
        if not steady:
            t1 = tb.sim.now
            late = [tb.sim.process(client(OPS_LATE)) for _ in range(N_LATE)]
            for p in late:
                yield p
            marks["phase_b"] = tb.sim.now - t1
        marks["total"] = tb.sim.now - t0

    tb.sim.run(tb.sim.process(driver()))
    n_clients = N_EARLY + (0 if steady else N_LATE)
    assert len(done) == n_clients
    ops = N_EARLY * OPS_EARLY + (0 if steady else N_LATE * OPS_LATE)
    return {
        "total": marks["total"],
        "phase_a": marks["phase_a"],
        "phase_b": marks.get("phase_b", 0.0),
        "tput": ops / marks["total"],
        "tuner": tuner,
        "epoch_seen": server.tuner_epoch_seen,
    }


def _run():
    return {
        "static-busy": _run_config(N_EARLY, tuned=False),
        "static-event": _run_config(64, tuned=False),
        "tuner": _run_config(N_EARLY, tuned=True),
        "tuner-steady": _run_config(N_EARLY, tuned=True, steady=True),
    }


def test_tuner_beats_best_static(benchmark):
    res = benchmark.pedantic(_run, rounds=1, iterations=1)
    tuned = res["tuner"]
    tuner = tuned["tuner"]
    statics = {k: res[k] for k in ("static-busy", "static-event")}
    best_name = min(statics, key=lambda k: statics[k]["total"])
    best = statics[best_name]

    fmt_rows(
        f"Concurrency phase shift: {N_EARLY} clients x{OPS_EARLY} ops, then "
        f"{N_LATE} clients x{OPS_LATE} ops ({PAYLOAD}B echo)",
        ["config", "phase A (ms)", "phase B (ms)", "total (ms)",
         "throughput", "switches"],
        [[name, f"{r['phase_a'] * 1e3:.3f}", f"{r['phase_b'] * 1e3:.3f}",
          f"{r['total'] * 1e3:.3f}", kops(r["tput"]),
          r["tuner"].switches if r["tuner"] else "-"]
         for name, r in res.items() if name != "tuner-steady"])
    for d in tuner.decisions:
        print("   " + d.label())

    benchmark.extra_info["total_ms"] = {
        name: round(r["total"] * 1e3, 3) for name, r in res.items()}
    emit_bench(
        "tuner", "phase_shift",
        {"tuner_tput_kops": metric(round(tuned["tput"] / 1e3, 2),
                                   unit="kops", better="higher"),
         "static_busy_tput_kops":
             metric(round(res["static-busy"]["tput"] / 1e3, 2),
                    unit="kops", better="higher"),
         "static_event_tput_kops":
             metric(round(res["static-event"]["tput"] / 1e3, 2),
                    unit="kops", better="higher"),
         "tuner_vs_best_static":
             metric(round(tuned["tput"] / best["tput"], 4),
                    unit="ratio", better="higher"),
         "switches": metric(tuner.switches, unit="count", better="none")},
        config={"n_early": N_EARLY, "n_late": N_LATE,
                "ops_early": OPS_EARLY, "ops_late": OPS_LATE,
                "payload": PAYLOAD})

    # -- the closed-loop gates ----------------------------------------------
    # 1. The tuned run beats the best static declared hints end-to-end.
    assert tuned["total"] < best["total"], (
        f"tuner {tuned['total'] * 1e3:.3f}ms did not beat best static "
        f"({best_name}: {best['total'] * 1e3:.3f}ms)")
    # 2. Bounded convergence: exactly one decisive switch, no flapping,
    #    and it landed on the event-polled choice.
    assert 1 <= tuner.switches <= 2, tuner.summary_lines()
    route = tuner._engines[0].plan.routes["Echo"]
    assert route.choice.poll_mode is PollMode.EVENT
    # 3. Both peers converged: the server echoed the post-switch epoch.
    assert tuned["epoch_seen"] >= 1
    # 4. A steady workload never switches...
    steady_tuner = res["tuner-steady"]["tuner"]
    assert steady_tuner.switches == 0 and steady_tuner.epoch == 0
    # 5. ...and untuned runs put zero tuner bytes on the wire.
    for name, r in statics.items():
        assert r["epoch_seen"] == -1, f"{name} leaked epoch frames"
    # Sanity on the premise: the phases genuinely disagree about the best
    # static config (otherwise this benchmark gates nothing).
    assert res["static-busy"]["phase_a"] < res["static-event"]["phase_a"]
    assert res["static-busy"]["phase_b"] > res["static-event"]["phase_b"]
