"""Fault recovery under load: YCSB-A over HatKV through a mid-run link flap.

Eight clients run a 50/50 read/update mix against one HatKV server while the
server's fabric port goes hard-down for a window in the middle of the run.
Reads (idempotent) are retried inside the engine; failed updates surface to
the application, which re-issues them under a fresh seqid -- the engine
never blind-retries a write.  Reported per phase (before / during / after
the flap): op count, p50 and p99 latency; plus the engine's fault counters.

Acceptance properties asserted here:

* every operation eventually succeeds (100% success rate);
* zero blind retries of non-idempotent ops (no ``retry`` trace entry for a
  write function);
* two runs with the same seed replay byte-identical fault traces.
"""

import random

import pytest

from benchmarks.figutil import fmt_rows, is_full, usec
from repro.core.resilience import RetryPolicy
from repro.faults import FaultInjector, FaultPlan, LinkFlap
from repro.hatkv import HatKVServer, connect_hatkv, load_hatkv_module
from repro.sim.units import ms, us
from repro.testbed import Testbed
from repro.thrift.errors import TTransportException

SEED = 42
N_CLIENTS = 12 if is_full() else 8
OPS_PER_CLIENT = 60 if is_full() else 40
KEYS = 64
VALUE = b"x" * 100
THINK_TIME = 100 * us
FLAP_START = 2.5 * ms
FLAP_DURATION = 1.0 * ms
WRITE_FRACTION = 0.5          # YCSB-A
MAX_REISSUES = 50
PHASES = ("before", "during", "after")

WRITE_FNS = ("Put", "MultiPut")


def _key(i: int) -> bytes:
    return f"key-{i}".encode().ljust(24, b"0")


def _phase(t: float) -> str:
    if t < FLAP_START:
        return "before"
    if t < FLAP_START + FLAP_DURATION:
        return "during"
    return "after"


def _run_once(seed: int):
    tb = Testbed(n_nodes=3)
    gen = load_hatkv_module(variant="function", concurrency=N_CLIENTS)
    HatKVServer(tb.node(0), gen, concurrency=N_CLIENTS).start()
    FaultInjector(tb, FaultPlan(seed=seed, events=(
        LinkFlap("node0", start=FLAP_START, duration=FLAP_DURATION),
    ))).arm()

    # Preload the keyspace before measurement starts.
    def load():
        stub = yield from connect_hatkv(tb.node(1), tb.node(0), gen,
                                        concurrency=N_CLIENTS)
        yield from stub.MultiPut([_key(i) for i in range(KEYS)],
                                 [VALUE] * KEYS)
        stub._hatrpc.close()

    tb.sim.run(tb.sim.process(load()))

    results = []     # (t0, latency, ok, is_write, reissues)
    engines = []

    def client(cid: int):
        stub = yield from connect_hatkv(
            tb.node(1 + cid % 2), tb.node(0), gen,
            concurrency=N_CLIENTS, deadline=2 * ms,
            retry_policy=RetryPolicy(max_attempts=5),
            rng=random.Random(seed * 1000 + cid))
        engines.append(stub._hatrpc.engine)
        rng = random.Random(seed * 7777 + cid)
        for _ in range(OPS_PER_CLIENT):
            key = _key(rng.randrange(KEYS))
            is_write = rng.random() < WRITE_FRACTION
            t0 = tb.sim.now
            reissues = 0
            ok = False
            while True:
                try:
                    if is_write:
                        yield from stub.Put(key, VALUE)
                    else:
                        yield from stub.Get(key)
                    ok = True
                    break
                except TTransportException:
                    # Engine-level recovery is exhausted for this call; the
                    # application re-issues (a fresh stub call = a fresh
                    # seqid, so this is not a blind retry) after a pause.
                    reissues += 1
                    if reissues > MAX_REISSUES:
                        break
                    yield tb.sim.timeout(THINK_TIME)
            results.append((t0, tb.sim.now - t0, ok, is_write, reissues))
            yield tb.sim.timeout(THINK_TIME)

    procs = [tb.sim.process(client(c)) for c in range(N_CLIENTS)]
    tb.sim.run()
    for p in procs:
        p.value              # surface any unexpected client failure
    traces = [e.fault_trace for e in engines]
    return results, engines, traces


def _p(lats, q):
    s = sorted(lats)
    return s[min(int(q * (len(s) - 1)), len(s) - 1)] if s else float("nan")


def test_fault_recovery_ycsb_a(benchmark):
    (results, engines, traces), (results2, _eng2, traces2) = \
        benchmark.pedantic(lambda: (_run_once(SEED), _run_once(SEED)),
                           rounds=1, iterations=1)

    by_phase = {ph: [] for ph in PHASES}
    for t0, lat, ok, _w, _r in results:
        by_phase[_phase(t0)].append(lat)
    rows = [[ph, str(len(by_phase[ph])),
             usec(_p(by_phase[ph], 0.50)), usec(_p(by_phase[ph], 0.99))]
            for ph in PHASES]
    fmt_rows(f"YCSB-A through a {FLAP_DURATION * 1e3:.1f}ms link flap "
             f"({N_CLIENTS} clients)",
             ["phase", "ops", "p50", "p99"], rows)

    totals = {}
    for e in engines:
        for k, v in e.faults.as_dict().items():
            totals[k] = totals.get(k, 0) + v
    reissues = sum(r for *_x, r in results)
    fmt_rows("engine fault counters (all clients) + app re-issues",
             ["counter", "value"],
             [[k, str(v)] for k, v in sorted(totals.items())]
             + [["app_reissues", str(reissues)]])
    benchmark.extra_info["fault_counters"] = totals
    benchmark.extra_info["app_reissues"] = reissues

    # Every phase saw traffic, and the flap actually hurt.
    assert all(by_phase[ph] for ph in PHASES)
    assert _p(by_phase["during"], 0.99) > _p(by_phase["before"], 0.99)

    # 100% of ops (idempotent and re-issued writes alike) succeeded.
    assert all(ok for _t, _l, ok, _w, _r in results)
    # The engine did recover work: retries and reconnects happened.
    assert totals["retries"] >= 1
    assert totals["reconnects"] >= 1
    # Zero blind retries of non-idempotent ops: the engine refused them
    # (counter) and never emitted a retry trace entry for a write.
    assert totals["blind_retries_prevented"] >= 1
    for trace in traces:
        assert not any(kind == "retry" and fn in WRITE_FNS
                       for _t, kind, fn, _c, _d in trace)

    # Determinism: an identical seed replays identical retry/failover
    # traces and identical per-op results.
    assert traces == traces2
    assert results == results2
