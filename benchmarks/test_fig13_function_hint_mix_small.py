"""Figure 13: function-level hints -- mixed workload, 512 B payloads.

Clients issue a 50/50 mix of a latency-hinted and a throughput-hinted RPC;
the server computes a payload-proportional checksum.  Reported: latency of
the latency calls, throughput of the throughput calls.
"""

import pytest

from benchmarks.figutil import (emit_bench, fmt_rows, is_full, kops,
                                lat_metric, tput_metric, usec)
from repro.atb import MixBenchmark

MODES = ["hatrpc", "hybrid_eager_rndv", "direct_write_send", "rfp",
         "direct_writeimm"]
CLIENTS = [1, 4, 16, 64, 128] if is_full() else [4, 16, 64]
PAYLOAD = 512


def _run():
    out = {}
    for mode in MODES:
        for nc in CLIENTS:
            r = MixBenchmark(mode=mode, payload=PAYLOAD, n_clients=nc,
                             iters=16, warmup=4).run()
            out[(mode, nc)] = (r.lat_stats.mean, r.tput_ops_per_sec)
    return out


def test_fig13_function_hint_mix_small(benchmark):
    res = benchmark.pedantic(_run, rounds=1, iterations=1)
    fmt_rows(f"Fig. 13 ({PAYLOAD}B): latency-call latency",
             ["mode"] + [f"{c} clients" for c in CLIENTS],
             [[m] + [usec(res[(m, c)][0]) for c in CLIENTS] for m in MODES])
    fmt_rows(f"Fig. 13 ({PAYLOAD}B): throughput-call throughput",
             ["mode"] + [f"{c} clients" for c in CLIENTS],
             [[m] + [kops(res[(m, c)][1]) for c in CLIENTS] for m in MODES])
    benchmark.extra_info["mix"] = {
        f"{m}/{c}": {"lat_us": round(v[0] * 1e6, 2),
                     "tput_kops": round(v[1] / 1e3, 1)}
        for (m, c), v in res.items()}
    metrics = {}
    for (m, c), (lat, tput) in res.items():
        metrics[f"lat_us.{m}.{c}"] = lat_metric(lat)
        metrics[f"tput_kops.{m}.{c}"] = tput_metric(tput)
    emit_bench("fig13", "function_hint_mix_small", metrics,
               config={"modes": MODES, "clients": CLIENTS,
                       "payload": PAYLOAD})

    # HatRPC's latency calls stay ahead of the hint-less baseline at every
    # client count (paper: up to 12% at 512B).
    for nc in CLIENTS:
        assert res[("hatrpc", nc)][0] < \
            res[("hybrid_eager_rndv", nc)][0] * 1.02, nc
