"""Cached vs uncached phased YCSB-B: the ``cacheable`` hint's payoff.

Two phased runs against identical 2-shard clusters -- one with Get marked
``cacheable(ttl, hot_promote)`` (per-*node* shared
:class:`~repro.hatkv.cache.HotKeyCache`, the per-machine shape), one with
the cache opted out -- under a hot zipfian skew where client-side leases
should pay.  Every stub in **both** legs is wrapped in a zero-stale
oracle: writes are serialized per key and stamped with a global sequence
number, reads capture the last *acknowledged* sequence at issue time, and
any reply older than that floor is a stale read.  The lease protocol's
whole claim is that the speedup costs no freshness, so the gate is joint:

* MEASUREMENT throughput cache-on >= 1.3x cache-off;
* zero stale reads in either leg (thousands of checked ops);
* fewer server requests per client op (the server-CPU proxy: hits never
  reach a shard).

A second cell replays the ISSUE's storm shape: a leased hot key warmed on
several client nodes takes a Put burst from another node; every post-ack
read must observe the acknowledged value, and each ack must land within
one lease of its issue (the server write barrier never waits out more
than the epoch horizon).
"""

import os
import tempfile

import pytest

from benchmarks.figutil import emit_bench, fmt_rows, is_full, kops, \
    tput_metric
from benchmarks.oracle import OracleStub, StaleOracle
from repro import obs
from repro.bench import Phase, PhasedRun, ScenarioMatrix, metric
from repro.hatkv import ShardedKVCluster, load_hatkv_module
from repro.hatkv.client import cache_for
from repro.obs import JsonlSink, MetricsRegistry, MetricsSampler, read_stream
from repro.sim.units import ms, us
from repro.testbed import Testbed
from repro.ycsb import run_ycsb_phased, scenario_spec
from repro.ycsb.phased import measurement_result
from repro.ycsb.workload import OpType, WorkloadSpec

SHARDS = 2
N_CLIENTS = 48
#: Few client nodes on purpose: the cache is per *machine*, so read
#: density per cache (and the hit rate) scales with clients per node.
N_CLIENT_NODES = 2
TTL = 50 * us
HOT_PROMOTE = 4
WARMUP = 1 * ms
MEASURE = 4 * ms if is_full() else 2 * ms
COOLDOWN = 0.25 * ms
SAMPLE_EVERY = 100 * us
GATE_SPEEDUP = 1.3
BURST = 12                       # storm-cell writes to the one hot key

#: One calm cell at a hot skew: leases only pay where reads concentrate.
MATRIX = ScenarioMatrix(skews=[1.2], value_sizes=[100])

#: Repo WORKLOAD_B folds MultiGet into the read mix; big-batch replies
#: carry no versions (never admitted), so the cacheable leg is measured
#: on the per-key Get/Put mix the lease protocol actually covers.
B_HOT = WorkloadSpec("B-hot", ((OpType.GET, 0.95), (OpType.PUT, 0.05)))

_CACHE_COUNTERS = ("hits", "misses", "invalidations", "lease_expiries",
                   "hot_reads")


def _stream_path(leg: str) -> str:
    """CI sets REPRO_STREAM_OUT; each leg streams beside it."""
    out = os.environ.get("REPRO_STREAM_OUT")
    if out:
        root, ext = os.path.splitext(out)
        return f"{root}.{leg}{ext or '.jsonl'}"
    return os.path.join(tempfile.gettempdir(), f"cache_ycsb_{leg}.jsonl")


# -- the zero-stale oracle ----------------------------------------------------
# StaleOracle / OracleStub live in benchmarks.oracle so the resize
# benchmark can reuse the identical freshness checks.


# -- the two phased legs ------------------------------------------------------

def _leg(cached: bool):
    leg = "on" if cached else "off"
    scenario = MATRIX.scenarios()[0]
    spec = scenario_spec(B_HOT, scenario)
    reg = MetricsRegistry()
    with obs.installed(reg):
        tb = Testbed(n_nodes=SHARDS + 9)
        gen = load_hatkv_module(
            "function",
            cacheable={"ttl": TTL, "hot_promote": HOT_PROMOTE}
            if cached else None)
        cluster = ShardedKVCluster(tb, SHARDS, gen_module=gen).start()
        oracle = StaleOracle(tb.sim)
        node_caches = {}

        def connect(node):
            if cached:
                shared = node_caches.get(node.name)
                if shared is None:
                    # One cache per client *node*: every client process
                    # on a machine reads through (and invalidates) it.
                    shared = node_caches[node.name] = cache_for(node, gen)
                router = yield from cluster.connect(node, cache=shared)
            else:
                router = yield from cluster.connect(node, cache=False)
            return OracleStub(router, oracle)

        sampler = MetricsSampler(tb.sim, reg, interval=SAMPLE_EVERY,
                                 sink=JsonlSink(_stream_path(leg)))
        run = PhasedRun(tb.sim, name=f"ycsb_cache/{leg}/{scenario.name}",
                        warmup=WARMUP, measurement=MEASURE,
                        cooldown=COOLDOWN, registry=reg, sampler=sampler)
        req_marks = {}

        def on_phase(phase, t):
            # cluster.requests at each phase edge: MEASUREMENT's server
            # load is the COOLDOWN mark minus the MEASUREMENT mark.
            req_marks[phase.value] = cluster.requests

        run.on_phase.append(on_phase)
        run_ycsb_phased(cluster, connect, spec, testbed=tb, run=run,
                        n_clients=N_CLIENTS, n_client_nodes=N_CLIENT_NODES)
    meas_reqs = req_marks[Phase.COOLDOWN.value] \
        - req_marks[Phase.MEASUREMENT.value]
    ops = run.ops(Phase.MEASUREMENT)
    return {
        "leg": leg,
        "run": run,
        "result": measurement_result(run),
        "oracle": oracle,
        "req_per_op": meas_reqs / ops if ops else float("inf"),
        "cache": {name: reg.counter(f"hatkv.cache.{name}").value
                  for name in _CACHE_COUNTERS},
        "write_stalls": reg.counter("hatkv.lease.write_stalls").value,
        "stream": list(read_stream(_stream_path(leg))),
        "config": scenario.config(),
    }


def _run():
    return _leg(False), _leg(True)


def test_cached_ycsb_b_speedup_with_zero_stale_reads(benchmark):
    off, on = benchmark.pedantic(_run, rounds=1, iterations=1)

    def row(r):
        res = r["result"]
        get = res.per_op[OpType.GET]
        put = res.per_op[OpType.PUT]
        return [r["leg"], kops(res.throughput_ops),
                f"{get.mean / us:6.1f}us", f"{put.mean / us:6.1f}us",
                f"{r['req_per_op']:5.2f}", f"{r['cache']['hits']:6d}",
                f"{r['oracle'].stale}/{r['oracle'].checked}"]

    fmt_rows(f"Cached YCSB-B ({SHARDS} shards, {N_CLIENTS} clients on "
             f"{N_CLIENT_NODES} nodes, ttl={TTL / us:.0f}us, "
             f"hot_promote={HOT_PROMOTE})",
             ["leg", "tput", "get-mean", "put-mean", "srv-req/op",
              "hits", "stale/checked"],
             [row(off), row(on)])
    c = on["cache"]
    fmt_rows("Cache counters (cache-on leg)",
             list(_CACHE_COUNTERS) + ["write_stalls"],
             [[c[n] for n in _CACHE_COUNTERS] + [on["write_stalls"]]])

    off_tput = off["result"].throughput_ops
    on_tput = on["result"].throughput_ops
    speedup = on_tput / off_tput
    benchmark.extra_info["speedup"] = round(speedup, 3)
    for r in (off, on):
        r["run"].emit_phase_records("cache", f"ycsb_b_{r['leg']}",
                                    config=r["config"])
    emit_bench("cache", "ycsb_b_cached",
               {"tput_kops.cache_off": tput_metric(off_tput),
                "tput_kops.cache_on": tput_metric(on_tput),
                "speedup": metric(round(speedup, 3), unit="x",
                                  better="higher"),
                "srv_req_per_op.cache_on": metric(
                    round(on["req_per_op"], 3), unit="req/op",
                    better="lower"),
                "stale_reads": metric(
                    off["oracle"].stale + on["oracle"].stale,
                    unit="ops", better="lower"),
                "cache_hits": metric(c["hits"], unit="ops",
                                     better="higher")},
               config={"shards": SHARDS, "n_clients": N_CLIENTS,
                       "n_client_nodes": N_CLIENT_NODES,
                       "ttl_us": TTL / us, "hot_promote": HOT_PROMOTE,
                       **on["config"]})

    # -- the acceptance gates ------------------------------------------------
    # Both legs did real measured work and attributed every op.
    for r in (off, on):
        assert r["run"].unattributed == 0
        assert r["run"].ops(Phase.MEASUREMENT) > 0
        # The oracle checked thousands of reads and found zero stale:
        # every Get observed a value at least as new as the last
        # acknowledged Put for its key at issue time.
        assert r["oracle"].checked > 1000
        assert r["oracle"].stale == 0, r["oracle"].first_stale
        samples = [s for s in r["stream"] if s.get("type") == "sample"]
        assert len(samples) >= 10 and \
            all("phase" in s["tags"] for s in samples)
    # The hint paid: hot-set hits drive client throughput past the gate.
    assert speedup >= GATE_SPEEDUP, \
        f"cache-on {kops(on_tput)} vs off {kops(off_tput)}: {speedup:.2f}x"
    # And the server did strictly less work per client op (CPU proxy).
    assert on["req_per_op"] < off["req_per_op"]
    # The cache actually cycled: hits, write invalidations, and leases
    # aging out on the sim clock.
    assert c["hits"] > 0 and c["invalidations"] > 0
    assert c["lease_expiries"] > 0
    # The uncached leg never touched a cache.
    assert off["cache"]["hits"] == 0 and off["cache"]["misses"] == 0


# -- the storm cell -----------------------------------------------------------

def _storm_cell():
    reg = MetricsRegistry()
    out = {"stale": 0, "acks": [], "reads": 0}
    with obs.installed(reg):
        tb = Testbed(n_nodes=SHARDS + 6)
        gen = load_hatkv_module(
            "function", cacheable={"ttl": TTL, "hot_promote": HOT_PROMOTE})
        cluster = ShardedKVCluster(tb, SHARDS, gen_module=gen).start()
        hot = b"hot-key-0000000000000000"
        free = [n for n in tb.nodes if n not in cluster.nodes]

        def cell():
            readers = []
            for node in free[:4]:
                r = yield from cluster.connect(node,
                                               cache=cache_for(node, gen))
                readers.append(r)
            writer = yield from cluster.connect(free[4], cache=False)
            yield from writer.Put(hot, b"%03d" % 0)
            yield tb.sim.timeout(2 * TTL)
            # Warm every reader until its cache provably serves the key:
            # all readers' leases share the server's per-key epoch, so a
            # single admit+hit pair can straddle an epoch edge -- retry.
            hits = reg.counter("hatkv.cache.hits")
            for r in readers:
                before = hits.value
                for _ in range(8):
                    yield from r.Get(hot)
                    if hits.value > before:
                        break
                assert hits.value > before, "reader cache never warmed"
            for i in range(1, BURST + 1):
                t0 = tb.sim.now
                yield from writer.Put(hot, b"%03d" % i)
                out["acks"].append(tb.sim.now - t0)
                for r in readers:
                    res = yield from r.Get(hot)
                    out["reads"] += 1
                    if not res.found or res.value != b"%03d" % i:
                        out["stale"] += 1

        tb.sim.run(tb.sim.process(cell()))
    out["cache"] = {name: reg.counter(f"hatkv.cache.{name}").value
                    for name in _CACHE_COUNTERS}
    out["write_stalls"] = reg.counter("hatkv.lease.write_stalls").value
    return out


def test_put_burst_invalidates_every_cache_within_one_lease(benchmark):
    out = benchmark.pedantic(_storm_cell, rounds=1, iterations=1)
    acks = out["acks"]
    fmt_rows(f"Put-burst storm cell ({BURST} writes, 4 warmed reader "
             f"nodes, ttl={TTL / us:.0f}us)",
             ["post-ack reads", "stale", "ack-max", "ack-mean",
              "write_stalls", "expiries+inval"],
             [[out["reads"], out["stale"],
               f"{max(acks) / us:6.1f}us",
               f"{sum(acks) / len(acks) / us:6.1f}us",
               out["write_stalls"],
               out["cache"]["lease_expiries"]
               + out["cache"]["invalidations"]]])
    emit_bench("cache", "put_burst_storm",
               {"stale_reads": metric(out["stale"], unit="ops",
                                      better="lower"),
                "ack_max_us": metric(round(max(acks) / us, 2), unit="us",
                                     better="lower")},
               config={"burst": BURST, "ttl_us": TTL / us})
    # Every read issued after a Put acked saw that Put's value -- on all
    # reader nodes, including ones whose cached entry was only ever
    # dropped by lease expiry (the server barrier outwaits them).
    assert out["reads"] == BURST * 4
    assert out["stale"] == 0
    # The caches were genuinely in play and genuinely cycled.
    assert out["cache"]["hits"] >= 4
    assert out["cache"]["lease_expiries"] + out["cache"]["invalidations"] > 0
    # "Within one lease": no ack waited out more than the epoch horizon
    # (one ttl from the epoch's first grant) plus RPC slack -- the write
    # barrier is bounded, writers can't be starved by read bursts.
    assert max(acks) <= TTL + 100 * us, f"{max(acks) / us:.1f}us"
    # And the barrier provably engaged at least once (a leased entry was
    # outwaited rather than served stale).
    assert out["write_stalls"] >= 1
