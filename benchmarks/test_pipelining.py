"""Pipelined RPC: single-connection throughput vs the in-flight window.

One client, one Direct-WriteIMM connection, 4 KiB echoes.  The blocking
path serializes every round trip; the pipelined path (``call_async`` under
a bounded window) overlaps them, so throughput should scale with the
window until the wire or the server core saturates.  Headline check: a
window of 16 buys >= 4x the blocking throughput.
"""

import pytest

from benchmarks.figutil import emit_bench, fmt_rows, is_full, kops, \
    tput_metric
from repro.atb.throughput import ThroughputBenchmark
from repro.sim.units import KiB

WINDOWS = [1, 2, 4, 8, 16, 32] if is_full() else [1, 4, 16]
MODES = ["direct_writeimm", "hatrpc"]
PAYLOAD = 4 * KiB


def _run():
    out = {}
    for mode in MODES:
        for w in WINDOWS:
            r = ThroughputBenchmark(mode=mode, payload=PAYLOAD, n_clients=1,
                                    iters=60, warmup=10, n_nodes=2,
                                    outstanding=w).run()
            out[(mode, w)] = r.ops_per_sec
    return out


def test_pipelining_window_scaling(benchmark):
    tput = benchmark.pedantic(_run, rounds=1, iterations=1)
    fmt_rows(
        f"Pipelining: 1 client, {PAYLOAD}B echo, throughput vs window",
        ["mode"] + [f"window {w}" for w in WINDOWS],
        [[m] + [kops(tput[(m, w)]) for w in WINDOWS] for m in MODES])
    benchmark.extra_info["throughput_kops"] = {
        f"{m}/{w}": round(v / 1e3, 1) for (m, w), v in tput.items()}
    emit_bench("pipelining", "window_scaling",
               {f"throughput_kops.{m}.{w}": tput_metric(v)
                for (m, w), v in tput.items()},
               config={"modes": MODES, "windows": WINDOWS,
                       "payload": PAYLOAD, "n_clients": 1})

    for mode in MODES:
        # monotone-ish: widening the window never costs throughput
        for lo, hi in zip(WINDOWS, WINDOWS[1:]):
            assert tput[(mode, hi)] >= 0.95 * tput[(mode, lo)], \
                f"{mode}: window {hi} slower than window {lo}"
    # the ISSUE's headline: window-16 >= 4x blocking on Direct-WriteIMM
    dwi = "direct_writeimm"
    assert tput[(dwi, 16)] >= 4.0 * tput[(dwi, 1)], (
        f"window-16 pipelining only bought "
        f"{tput[(dwi, 16)] / tput[(dwi, 1)]:.2f}x over blocking")
