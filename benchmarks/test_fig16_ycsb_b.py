"""Figure 16: HatKV vs emulated comparators on YCSB workload B.

The read-intensive mix (47.5% GET / 47.5% MultiGET) is communication-bound,
so the paper's orderings reproduce directly: HatKV best, AR-gRPC the
strongest comparator, HERD collapsing on MultiGET (chunked SEND responses),
Pilaf/RFP paying their multi-READ / speculative-READ fetch paths.

Each system runs on the phased harness (WARMUP -> MEASUREMENT -> COOLDOWN
on sim time): the headline numbers come from the MEASUREMENT window only,
with ops attributed to the phase they *started* in, and every phase is
emitted as its own ``fig16ph`` BenchRecord for the regression gate.
"""

import pytest

from benchmarks.figutil import (emit_bench, fmt_rows, is_full, kops,
                                lat_metric, tput_metric, usec)
from repro.bench import PhasedRun
from repro.emul import start_system
from repro.sim.units import us
from repro.testbed import Testbed
from repro.ycsb import (OpType, WORKLOAD_B, measurement_result,
                        run_ycsb_phased)

SYSTEMS = ["hatkv_function", "hatkv_service", "ar_grpc", "herd", "pilaf",
           "rfp"]
N_CLIENTS = 128 if is_full() else 48
WARMUP = 250 * us
MEASURE = 1000 * us if is_full() else 600 * us
COOLDOWN = 80 * us


def _run():
    out = {}
    for system in SYSTEMS:
        tb = Testbed(n_nodes=5)
        server, connect = start_system(tb, system, n_clients=N_CLIENTS)
        run = PhasedRun(tb.sim, name=f"ycsb_b.{system}", warmup=WARMUP,
                        measurement=MEASURE, cooldown=COOLDOWN)
        run_ycsb_phased(server, connect, WORKLOAD_B, testbed=tb, run=run,
                        n_clients=N_CLIENTS)
        run.emit_phase_records("fig16ph", config={"system": system,
                                                  "n_clients": N_CLIENTS})
        out[system] = measurement_result(run)
    return out


def test_fig16_ycsb_b(benchmark):
    res = benchmark.pedantic(_run, rounds=1, iterations=1)
    hat = res["hatkv_function"].throughput_ops
    fmt_rows(f"Fig. 16a: YCSB-B throughput ({N_CLIENTS} clients, "
             f"{MEASURE / us:.0f}us measured window)",
             ["system", "throughput", "HatKV-F speedup"],
             [[s, kops(res[s].throughput_ops),
               f"x{hat / res[s].throughput_ops:.2f}"] for s in SYSTEMS])
    fmt_rows("Fig. 16b: YCSB-B mean latency per op",
             ["system"] + [op.value for op in OpType],
             [[s] + [usec(res[s].latency(op).mean)
                     if res[s].latency(op).samples else "      n/a"
                     for op in OpType] for s in SYSTEMS])
    benchmark.extra_info["throughput_kops"] = {
        s: round(r.throughput_ops / 1e3, 1) for s, r in res.items()}
    metrics = {}
    for s, r in res.items():
        metrics[f"tput_kops.{s}"] = tput_metric(r.throughput_ops)
        for op in OpType:
            if r.latency(op).samples:
                metrics[f"lat_us.{s}.{op.value}"] = \
                    lat_metric(r.latency(op).mean)
    emit_bench("fig16", "ycsb_b", metrics,
               config={"systems": SYSTEMS, "n_clients": N_CLIENTS,
                       "warmup_us": WARMUP / us, "measure_us": MEASURE / us})

    # The paper's throughput ordering.
    assert hat > res["ar_grpc"].throughput_ops * 0.98
    assert hat > res["pilaf"].throughput_ops * 1.15
    assert hat > res["rfp"].throughput_ops * 1.15
    assert hat > res["herd"].throughput_ops * 1.5
    # HERD's MultiGET collapse.
    assert res["herd"].latency(OpType.MULTI_GET).mean > \
        2 * res["hatkv_function"].latency(OpType.MULTI_GET).mean
