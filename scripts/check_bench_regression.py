#!/usr/bin/env python
"""Diff two BENCH_*.json files and fail (exit 1) on a perf regression.

    python scripts/check_bench_regression.py BENCH_BASELINE.json BENCH_pr.json
    python scripts/check_bench_regression.py base.json new.json \\
        --tolerance 0.10 --override 'latency_us.*=0.25' --override 'tput*=0.15'

Records are matched by (figure, name, scale).  Metrics are compared in the
direction declared by the baseline metric's ``better`` field:

* ``lower``  -- regression when ``new > base * (1 + tol)``;
* ``higher`` -- regression when ``new < base * (1 - tol)``;
* ``none``   -- informational, never gated.

``--override GLOB=TOL`` sets a per-metric tolerance (fnmatch glob over the
metric name, first match wins; may be repeated).  Records whose
``config_hash`` changed are reported but not compared -- a deliberate
config change is not a regression.

A baseline record or metric that is *absent from the current run* fails
the gate: a benchmark that silently stops running is exactly the
regression this script exists to catch.  ``--allow-missing`` downgrades
that to a warning (for intentionally retired benchmarks -- refresh the
baseline instead where possible).  ``--summary PATH`` appends a markdown
report (worst offenders first) suitable for ``$GITHUB_STEP_SUMMARY``.

Exit codes: 0 ok, 1 regression or missing coverage, 2 usage/IO error.
"""

from __future__ import annotations

import argparse
import sys
from fnmatch import fnmatch
from pathlib import Path
from typing import Dict, List, Tuple

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.report import BenchRecord, load_bench  # noqa: E402

OK, REGRESSED, IMPROVED, SKIPPED = "ok", "REGRESSED", "improved", "skipped"


def parse_overrides(items: List[str]) -> List[Tuple[str, float]]:
    out = []
    for item in items:
        if "=" not in item:
            raise ValueError(f"--override needs GLOB=TOL, got {item!r}")
        glob, _, tol = item.rpartition("=")
        out.append((glob, float(tol)))
    return out


def tolerance_for(name: str, default: float,
                  overrides: List[Tuple[str, float]]) -> float:
    for glob, tol in overrides:
        if fnmatch(name, glob):
            return tol
    return default


def compare_metric(name: str, base: Dict, new: Dict, tol: float) -> str:
    better = base.get("better", "lower")
    bv, nv = base["value"], new["value"]
    if better == "none":
        return SKIPPED
    if bv == 0:
        # No meaningful relative comparison against a zero baseline.
        return OK if nv == 0 else SKIPPED
    if better == "lower":
        if nv > bv * (1 + tol):
            return REGRESSED
        if nv < bv * (1 - tol):
            return IMPROVED
    else:  # higher
        if nv < bv * (1 - tol):
            return REGRESSED
        if nv > bv * (1 + tol):
            return IMPROVED
    return OK


def diff(baseline: List[BenchRecord], current: List[BenchRecord],
         default_tol: float, overrides: List[Tuple[str, float]],
         verbose: bool = False, allow_missing: bool = False
         ) -> Tuple[int, int, List[str], List[Dict]]:
    """Returns (n_regressions, n_missing, report_lines, rows).

    ``rows`` carries one dict per reportable comparison (for the markdown
    summary): status, record id, metric, base/new values, signed delta %,
    tolerance %, and ``badness`` -- how far beyond tolerance the metric
    moved in the *wrong* direction (0 for non-regressions).
    """
    lines: List[str] = []
    rows: List[Dict] = []
    base_by_key = {r.key: r for r in baseline}
    cur_by_key = {r.key: r for r in current}
    regressions = missing = 0
    compared = improved = 0
    miss_word = "WARNING" if allow_missing else "MISSING"

    def miss(rid: str, what: str) -> None:
        nonlocal missing
        missing += 1
        lines.append(f"{miss_word} {rid}: {what}")
        rows.append({"status": "missing", "record": rid, "metric": what,
                     "base": None, "new": None, "delta": None, "tol": None,
                     "badness": 0.0})

    for key in sorted(base_by_key):
        rid = "/".join(key)
        if key not in cur_by_key:
            miss(rid, "missing from current run")
            continue
        base, cur = base_by_key[key], cur_by_key[key]
        if base.config_hash != cur.config_hash:
            lines.append(f"NOTE    {rid}: config changed "
                         f"({base.config_hash} -> {cur.config_hash}); "
                         "not compared")
            continue
        for mname in sorted(base.metrics):
            if mname not in cur.metrics:
                miss(rid, f"metric {mname} missing")
                continue
            tol = tolerance_for(mname, default_tol, overrides)
            verdict = compare_metric(mname, base.metrics[mname],
                                     cur.metrics[mname], tol)
            if verdict == SKIPPED:
                continue
            compared += 1
            bv = base.metrics[mname]["value"]
            nv = cur.metrics[mname]["value"]
            delta = (nv - bv) / bv * 100 if bv else 0.0
            if verdict == REGRESSED:
                regressions += 1
                better = base.metrics[mname].get("better", "lower")
                bad = delta if better == "lower" else -delta
                lines.append(
                    f"REGRESSED {rid} {mname}: {bv:g} -> {nv:g} "
                    f"({delta:+.1f}%, tol ±{tol * 100:.0f}%)")
                rows.append({"status": "regressed", "record": rid,
                             "metric": mname, "base": bv, "new": nv,
                             "delta": delta, "tol": tol * 100,
                             "badness": bad - tol * 100})
            elif verdict == IMPROVED:
                improved += 1
                rows.append({"status": "improved", "record": rid,
                             "metric": mname, "base": bv, "new": nv,
                             "delta": delta, "tol": tol * 100,
                             "badness": 0.0})
                if verbose:
                    lines.append(f"improved  {rid} {mname}: "
                                 f"{bv:g} -> {nv:g} ({delta:+.1f}%)")
            elif verbose:
                lines.append(f"ok        {rid} {mname}: "
                             f"{bv:g} -> {nv:g} ({delta:+.1f}%)")
    for key in sorted(set(cur_by_key) - set(base_by_key)):
        lines.append(f"NOTE    {'/'.join(key)}: new record "
                     "(no baseline); consider refreshing the baseline")
    lines.append(f"compared {compared} metrics: {regressions} regressed, "
                 f"{improved} improved, {missing} missing")
    return regressions, missing, lines, rows


_STATUS_ORDER = {"regressed": 0, "missing": 1, "improved": 2}
_STATUS_MARK = {"regressed": "🔴 regressed", "missing": "⚠️ missing",
                "improved": "🟢 improved"}


def write_summary(path: str, failed: bool, regressions: int, missing: int,
                  rows: List[Dict], allow_missing: bool) -> None:
    """Append a markdown report -- worst offenders first -- to ``path``."""
    # Regressions sorted by how far past tolerance they landed, then
    # missing coverage, then improvements; steady metrics stay off the
    # report (the log has them under --verbose).
    ordered = sorted(rows, key=lambda r: (_STATUS_ORDER[r["status"]],
                                          -r["badness"]))
    out = ["## Bench regression check", ""]
    verdict = "**FAIL**" if failed else "**PASS**"
    n_improved = sum(1 for r in rows if r["status"] == "improved")
    out.append(f"{verdict} — {regressions} regressed, {missing} missing"
               f"{' (allowed)' if allow_missing and missing else ''}, "
               f"{n_improved} improved")
    if ordered:
        out += ["", "| status | record | metric | baseline | current | Δ |",
                "|---|---|---|---|---|---|"]
        for r in ordered:
            if r["status"] == "missing":
                out.append(f"| {_STATUS_MARK['missing']} | {r['record']} | "
                           f"{r['metric']} | — | — | — |")
            else:
                out.append(
                    f"| {_STATUS_MARK[r['status']]} | {r['record']} | "
                    f"{r['metric']} | {r['base']:g} | {r['new']:g} | "
                    f"{r['delta']:+.1f}% (tol ±{r['tol']:.0f}%) |")
    out.append("")
    with open(path, "a", encoding="utf-8") as fh:
        fh.write("\n".join(out) + "\n")


def main(argv: List[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        description="Gate on benchmark regressions between two BENCH files")
    ap.add_argument("baseline", help="committed BENCH_BASELINE.json")
    ap.add_argument("current", help="freshly generated BENCH file")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="default relative tolerance (default 0.10 = 10%%)")
    ap.add_argument("--override", action="append", default=[],
                    metavar="GLOB=TOL",
                    help="per-metric tolerance override (repeatable)")
    ap.add_argument("--allow-missing", action="store_true",
                    help="baseline records/metrics absent from the current "
                         "run warn instead of failing the gate")
    ap.add_argument("--summary", metavar="PATH",
                    help="append a markdown report (worst offenders first) "
                         "to PATH, e.g. \"$GITHUB_STEP_SUMMARY\"")
    ap.add_argument("--verbose", action="store_true",
                    help="also print non-regressed comparisons")
    args = ap.parse_args(argv)

    try:
        overrides = parse_overrides(args.override)
        baseline = load_bench(args.baseline)
        current = load_bench(args.current)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    regressions, missing, lines, rows = diff(
        baseline, current, args.tolerance, overrides,
        verbose=args.verbose, allow_missing=args.allow_missing)
    for line in lines:
        print(line)
    failed = bool(regressions or (missing and not args.allow_missing))
    if args.summary:
        try:
            write_summary(args.summary, failed, regressions, missing, rows,
                          args.allow_missing)
        except OSError as exc:
            print(f"error: cannot write summary: {exc}", file=sys.stderr)
            return 2
    if failed:
        parts = []
        if regressions:
            parts.append(f"{regressions} metric(s) regressed "
                         "beyond tolerance")
        if missing and not args.allow_missing:
            parts.append(f"{missing} baseline metric(s)/record(s) missing "
                         "from the current run")
        print(f"\nFAIL: {'; '.join(parts)}")
        return 1
    print("\nPASS: no regressions beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
