#!/usr/bin/env python
"""Render a recorded trace file as ASCII trees + a hint-attribution table.

    python scripts/obs_dump.py TRACE.json
    python scripts/obs_dump.py TRACE.json --metrics METRICS.prom --max-traces 5

``TRACE.json`` is the Chrome ``trace_event`` file written by
``obs.export_chrome_trace(..., collector=...)`` (e.g. by
``examples/quickstart.py --trace``).  Span identity (trace/span/parent ids)
rides in each event's ``args``, so the call trees -- client call spans with
their server-side children -- are reconstructed from the file alone.

``--metrics FILE`` additionally prints a Prometheus text-format metrics
file (written by ``obs.promtext_render``) verbatim, so one invocation shows
both pillars of a run's observability output.

Exit codes: 0 ok, 2 usage/IO error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.attribution import attribution_table, spans_from_chrome  # noqa: E402
from repro.obs.trace import format_trace  # noqa: E402


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace", metavar="TRACE.json",
                    help="Chrome trace_event JSON with embedded span ids")
    ap.add_argument("--metrics", metavar="FILE", default=None,
                    help="also print this Prometheus text metrics file")
    ap.add_argument("--max-traces", type=int, default=10,
                    help="max trace trees to render (default: %(default)s)")
    args = ap.parse_args(argv)

    try:
        with open(args.trace) as f:
            doc = json.load(f)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read {args.trace}: {exc}", file=sys.stderr)
        return 2
    if isinstance(doc, list):            # bare trace_event array form
        doc = {"traceEvents": doc}

    spans = spans_from_chrome(doc)
    n_events = len(doc.get("traceEvents", []))
    by_trace = {}
    for span in spans:
        by_trace.setdefault(span.trace_id, []).append(span)

    print(f"{args.trace}: {n_events} events, {len(spans)} trace spans, "
          f"{len(by_trace)} traces")

    shown = 0
    for trace_id, tspans in by_trace.items():
        if shown >= args.max_traces:
            print(f"\n... and {len(by_trace) - shown} more traces "
                  f"(raise --max-traces to see them)")
            break
        print()
        print(format_trace(tspans))
        shown += 1

    print()
    print("hint attribution (per resolved hint tuple, per stage):")
    print(attribution_table(spans))

    if args.metrics is not None:
        try:
            text = Path(args.metrics).read_text()
        except OSError as exc:
            print(f"error: cannot read {args.metrics}: {exc}",
                  file=sys.stderr)
            return 2
        print()
        print(f"metrics ({args.metrics}):")
        print(text, end="" if text.endswith("\n") else "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
