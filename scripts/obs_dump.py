#!/usr/bin/env python
"""Render a recorded trace file as ASCII trees + a hint-attribution table.

    python scripts/obs_dump.py TRACE.json
    python scripts/obs_dump.py TRACE.json --metrics METRICS.prom --max-traces 5
    python scripts/obs_dump.py --series STREAM.jsonl

``TRACE.json`` is the Chrome ``trace_event`` file written by
``obs.export_chrome_trace(..., collector=...)`` (e.g. by
``examples/quickstart.py --trace``).  Span identity (trace/span/parent ids)
rides in each event's ``args``, so the call trees -- client call spans with
their server-side children -- are reconstructed from the file alone.

``--metrics FILE`` additionally prints a Prometheus text-format metrics
file (written by ``obs.promtext_render``) verbatim, so one invocation shows
both pillars of a run's observability output.

``--series STREAM.jsonl`` switches to the time-series view: the file is a
``MetricsSampler`` JSONL stream, and the dump shows every sampled series
(count / min / mean / max / last), the phase timeline, annotation events,
and SLO verdicts.  A trace file is not required in this mode.

Exit codes: 0 ok, 2 usage/IO error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.attribution import attribution_table, spans_from_chrome  # noqa: E402
from repro.obs.timeseries import read_stream, summarize_stream  # noqa: E402
from repro.obs.trace import format_trace  # noqa: E402


def _dump_series(path: str) -> int:
    try:
        records = read_stream(path)
    except OSError as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        return 2
    digest = summarize_stream(records)
    us = 1e-6
    print(f"{path}: {digest['n_samples']} samples, "
          f"{len(digest['series'])} series, "
          f"{len(digest['events'])} events, "
          f"t_end={digest['t_end'] / us:.1f}us")

    if digest["phases"]:
        print("\nphases:")
        for t, phase in digest["phases"]:
            print(f"  {t / us:>12.1f}us  {phase}")

    print("\nseries (value stats over the sampled window):")
    header = f"  {'name':<44} {'n':>5} {'min':>12} {'mean':>12} " \
             f"{'max':>12} {'last':>12}"
    print(header)
    for name in sorted(digest["series"]):
        st = digest["series"][name]
        print(f"  {name:<44} {st['n']:>5} {st['min']:>12.4g} "
              f"{st['mean']:>12.4g} {st['max']:>12.4g} {st['last']:>12.4g}")

    annotations = [e for e in digest["events"]
                   if e.get("kind") not in ("phase",)]
    if annotations:
        print("\nevents:")
        kinds: dict = {}
        for e in annotations:
            kinds[e["kind"]] = kinds.get(e["kind"], 0) + 1
        for kind in sorted(kinds):
            print(f"  {kind:<32} x{kinds[kind]}")

    if digest["slo"]:
        print("\nSLO verdicts:")
        for name in sorted(digest["slo"]):
            st = digest["slo"][name]
            verdict = "FAIL" if st["violations"] else "PASS"
            print(f"  {name:<32} {verdict}  "
                  f"({st['violations']} violation(s), "
                  f"{st['recovered']} recovered)")
    else:
        print("\nSLO verdicts: none recorded")
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace", metavar="TRACE.json", nargs="?", default=None,
                    help="Chrome trace_event JSON with embedded span ids")
    ap.add_argument("--metrics", metavar="FILE", default=None,
                    help="also print this Prometheus text metrics file")
    ap.add_argument("--series", metavar="STREAM.jsonl", default=None,
                    help="print sampled time series + SLO verdicts from a "
                         "MetricsSampler JSONL stream")
    ap.add_argument("--max-traces", type=int, default=10,
                    help="max trace trees to render (default: %(default)s)")
    args = ap.parse_args(argv)

    if args.series is not None:
        rc = _dump_series(args.series)
        if rc != 0 or args.trace is None:
            return rc
        print()
    elif args.trace is None:
        ap.error("a TRACE.json argument or --series STREAM.jsonl is required")

    try:
        with open(args.trace) as f:
            doc = json.load(f)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read {args.trace}: {exc}", file=sys.stderr)
        return 2
    if isinstance(doc, list):            # bare trace_event array form
        doc = {"traceEvents": doc}

    spans = spans_from_chrome(doc)
    n_events = len(doc.get("traceEvents", []))
    by_trace = {}
    for span in spans:
        by_trace.setdefault(span.trace_id, []).append(span)

    print(f"{args.trace}: {n_events} events, {len(spans)} trace spans, "
          f"{len(by_trace)} traces")

    shown = 0
    for trace_id, tspans in by_trace.items():
        if shown >= args.max_traces:
            print(f"\n... and {len(by_trace) - shown} more traces "
                  f"(raise --max-traces to see them)")
            break
        print()
        print(format_trace(tspans))
        shown += 1

    print()
    print("hint attribution (per resolved hint tuple, per stage):")
    print(attribution_table(spans))

    if args.metrics is not None:
        try:
            text = Path(args.metrics).read_text()
        except OSError as exc:
            print(f"error: cannot read {args.metrics}: {exc}",
                  file=sys.stderr)
            return 2
        print()
        print(f"metrics ({args.metrics}):")
        print(text, end="" if text.endswith("\n") else "\n")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:              # e.g. piped into `head`
        sys.exit(0)
