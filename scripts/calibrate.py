"""Cost-model calibration sweep (developer tool).

Prints the raw protocol latency/throughput grids that DESIGN.md section 5
calls the calibration check.  Run after any CostModel change and compare
the orderings against the paper's Section 3.2 before trusting the higher
layers; the binding assertions live in
tests/protocols/test_characterization.py.
"""

from repro.bench import ProtoBenchSpec, run_protocol_bench
from repro.protocols import protocol_names
from repro.sim.units import KiB, us
from repro.verbs.cq import PollMode

PROTOS = protocol_names()

print("== Fig4: 1-client latency (us), busy polling ==")
print(f"{'proto':20s}" + "".join(f"{s:>10d}" for s in [64, 512, 4096, 131072]))
for proto in PROTOS:
    row = []
    for size in [64, 512, 4096, 131072]:
        r = run_protocol_bench(ProtoBenchSpec(proto, payload=size, iters=10, warmup=3))
        row.append(r.mean_latency / us)
    print(f"{proto:20s}" + "".join(f"{v:10.2f}" for v in row))

print("\n== Fig4: 1-client latency (us), event polling ==")
for proto in PROTOS:
    row = []
    for size in [512, 131072]:
        r = run_protocol_bench(ProtoBenchSpec(proto, payload=size, iters=10, warmup=3,
                                              poll_mode=PollMode.EVENT))
        row.append(r.mean_latency / us)
    print(f"{proto:20s}" + "".join(f"{v:10.2f}" for v in row))

print("\n== Fig5-ish: throughput kops (512B) ==")
print(f"{'proto':20s}" + "".join(f"{c:>10d}" for c in [1, 16, 64]))
for proto in PROTOS:
    row = []
    for nc in [1, 16, 64]:
        for mode in [PollMode.BUSY, PollMode.EVENT]:
            pass
        r = run_protocol_bench(ProtoBenchSpec(proto, payload=512, n_clients=nc,
                                              iters=15, warmup=3))
        row.append(r.throughput_ops / 1e3)
    print(f"{proto:20s}" + "".join(f"{v:10.1f}" for v in row))
