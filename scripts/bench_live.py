#!/usr/bin/env python
"""Live phase/SLO view of a phased benchmark's JSONL metric stream.

    python scripts/bench_live.py STREAM.jsonl                # one snapshot
    python scripts/bench_live.py STREAM.jsonl --follow       # tail the run
    python scripts/bench_live.py STREAM.jsonl --watch bench.ops.rate \\
        --watch bench.op_latency.get.p99

The stream is the JSONL file a :class:`repro.obs.timeseries.MetricsSampler`
writes (e.g. ``benchmarks/test_phased_ycsb.py`` with ``REPRO_STREAM_OUT``
set).  The view shows the current phase, a sparkline per watched series,
annotation counts (tuner decisions, admission shed waves, storms), and the
SLO verdicts -- all derived from the file alone, so it works while the
benchmark process is still writing (the reader skips a partial final line)
or long after it exited.

``--follow`` re-reads the file every ``--interval`` wall seconds and
redraws until the run's ``done`` phase event lands (or Ctrl-C).

Exit codes: 0 ok, 2 usage/IO error.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Sequence

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.timeseries import read_stream, summarize_stream  # noqa: E402

DEFAULT_WATCH = ["bench.ops.rate", "bench.op_latency.get.p99",
                 "admission.rejected.rate"]
_BLOCKS = " ▁▂▃▄▅▆▇█"
_US = 1e-6


def sparkline(values: Sequence[float], width: int = 40) -> str:
    """Unicode block sparkline of the last ``width`` values."""
    tail = list(values)[-width:]
    if not tail:
        return ""
    lo, hi = min(tail), max(tail)
    span = hi - lo
    if span <= 0:
        return _BLOCKS[1] * len(tail)
    out = []
    for v in tail:
        idx = 1 + int((v - lo) / span * (len(_BLOCKS) - 2))
        out.append(_BLOCKS[min(idx, len(_BLOCKS) - 1)])
    return "".join(out)


def _fmt_value(name: str, value: float) -> str:
    # Latency-flavoured series read better in microseconds.
    if ".p5" in name or ".p9" in name or "latency" in name or \
            name.endswith(".mean"):
        return f"{value / _US:.1f}us"
    if value >= 1e6:
        return f"{value / 1e6:.2f}M"
    if value >= 1e3:
        return f"{value / 1e3:.1f}k"
    return f"{value:.3g}"


def render_view(digest: Dict[str, Any], watch: Sequence[str],
                width: int = 40) -> str:
    """One text frame of the live view (pure function of the digest)."""
    lines: List[str] = []
    phase = digest["phase"] or "?"
    lines.append(f"t={digest['t_end'] / _US:>9.1f}us   phase={phase:<12} "
                 f"samples={digest['n_samples']}")
    if digest["phases"]:
        trail = " > ".join(p for _, p in digest["phases"])
        lines.append(f"phases: {trail}")
    lines.append("")
    for name in watch:
        st = digest["series"].get(name)
        if st is None:
            lines.append(f"  {name:<34} (no data)")
            continue
        lines.append(f"  {name:<34} {_fmt_value(name, st['last']):>10}  "
                     f"{sparkline(st['values'], width)}")
    kinds: Dict[str, int] = {}
    for e in digest["events"]:
        if e.get("kind") != "phase":
            kinds[e["kind"]] = kinds.get(e["kind"], 0) + 1
    if kinds:
        lines.append("")
        lines.append("events: " + "  ".join(
            f"{k}x{kinds[k]}" for k in sorted(kinds)))
    lines.append("")
    if digest["slo"]:
        for name in sorted(digest["slo"]):
            st = digest["slo"][name]
            verdict = "FAIL" if st["violations"] else "PASS"
            detail = ""
            if st["last"] is not None:
                v = st["last"]
                detail = (f"  last {v.get('kind', '?')} at "
                          f"{float(v.get('t', 0)) / _US:.1f}us "
                          f"({v.get('metric')} vs {v.get('threshold')})")
            lines.append(f"SLO {name:<28} {verdict}"
                         f"  ({st['violations']} violation(s)){detail}")
    else:
        lines.append("SLO: none declared")
    return "\n".join(lines)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("stream", metavar="STREAM.jsonl",
                    help="MetricsSampler JSONL stream to tail")
    ap.add_argument("--follow", "-f", action="store_true",
                    help="keep re-reading until the run's 'done' event")
    ap.add_argument("--interval", type=float, default=0.5,
                    help="wall seconds between re-reads (default: "
                         "%(default)s)")
    ap.add_argument("--watch", action="append", metavar="SERIES",
                    help="series to sparkline (repeatable; default: "
                         + ", ".join(DEFAULT_WATCH) + ")")
    ap.add_argument("--width", type=int, default=40,
                    help="sparkline width (default: %(default)s)")
    args = ap.parse_args(argv)
    watch = args.watch or DEFAULT_WATCH

    clear = "\x1b[2J\x1b[H" if sys.stdout.isatty() else ""
    while True:
        try:
            records = read_stream(args.stream)
        except OSError as exc:
            if not args.follow:
                print(f"error: cannot read {args.stream}: {exc}",
                      file=sys.stderr)
                return 2
            records = []                       # not written yet: keep waiting
        digest = summarize_stream(records)
        frame = render_view(digest, watch, width=args.width)
        if clear:
            print(clear + frame, flush=True)
        else:
            print(frame + "\n" + "-" * 72, flush=True)
        if not args.follow or digest["phase"] == "done":
            return 0
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:              # e.g. piped into `head`
        sys.exit(0)
