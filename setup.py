"""Legacy shim: the offline environment lacks the `wheel` package, so PEP 660
editable installs fail; `python setup.py develop` still works. All real
metadata lives in pyproject.toml."""

from setuptools import setup

setup()
